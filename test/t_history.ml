open T_helpers
module J = Emflow.Json_out
module Ji = Emflow.Json_in
module H = Emflow.Bench_history

(* ---------------------------------------------------------------- *)
(* Json_in: the parser feeding the history tracker                   *)

let test_json_in_values () =
  let ok text expected =
    match Ji.parse text with
    | Ok v ->
      Alcotest.(check string)
        ("round-trip of " ^ text)
        (J.to_string expected) (J.to_string v)
    | Error msg -> Alcotest.failf "%s: unexpected error %s" text msg
  in
  ok "null" J.Null;
  ok " true " (J.Bool true);
  ok "42" (J.Int 42);
  ok "-7" (J.Int (-7));
  ok "2.5e-3" (J.Float 2.5e-3);
  ok {|"plain"|} (J.String "plain");
  ok {|"esc \" \\ \n \t A"|} (J.String "esc \" \\ \n \t A");
  (* Surrogate pair: U+1F600 as UTF-8. *)
  ok {|"😀"|} (J.String "\xf0\x9f\x98\x80");
  ok {|[1,"a",{"b":false}]|}
    (J.List [ J.Int 1; J.String "a"; J.Obj [ ("b", J.Bool false) ] ]);
  ok {|{}|} (J.Obj []);
  ok
    {|{"metrics":{"x_s":0.5,"n":3}}|}
    (J.Obj
       [ ("metrics", J.Obj [ ("x_s", J.Float 0.5); ("n", J.Int 3) ]) ])

let test_json_in_rejects () =
  List.iter
    (fun text ->
      match Ji.parse text with
      | Ok _ -> Alcotest.failf "accepted malformed %s" text
      | Error msg ->
        Alcotest.(check bool)
          ("error names an offset: " ^ msg)
          true
          (String.length msg > 0))
    [
      ""; "{"; "[1,]"; {|{"a":}|}; "nul"; "01x"; "1.e"; {|"unterminated|};
      {|"bad \q escape"|}; "\"ctrl \x01 char\""; {|"\ud800 unpaired"|};
      "[1] trailing"; {|{"a" 1}|};
    ]

let test_json_in_roundtrip_emitter () =
  (* Whatever Json_out emits, Json_in reads back to the same document. *)
  let doc =
    J.Obj
      [
        ("s", J.String "q\"b\\n\nu\xe2\x82\xac"); (* includes a real euro sign *)
        ("i", J.Int (-12));
        ("f", J.Float 1.5e-7);
        ("l", J.List [ J.Bool true; J.Null ]);
        ("o", J.Obj [ ("nested", J.Int 1) ]);
      ]
  in
  match Ji.parse (J.to_string doc) with
  | Ok back ->
    Alcotest.(check string) "identical re-serialization" (J.to_string doc)
      (J.to_string back)
  | Error msg -> Alcotest.failf "emitter output rejected: %s" msg

(* ---------------------------------------------------------------- *)
(* Metric extraction from bench results                              *)

let obs_doc =
  J.Obj
    [
      ("bench", J.String "obs");
      ("full", J.Bool false);
      ("off_s", J.Float 0.002);
      ("metrics_on_ratio", J.Float 1.1);
      ("trace_on_ratio", J.Float 1.2);
      ("disabled_counter_inc_ns", J.Float 3.0);
      ("disabled_span_ns", J.Float 6.0);
      ("estimated_disabled_overhead_pct", J.Float 0.06);
      ("iterations", J.Int 64); (* not a measurement: must not appear *)
    ]

let scaling_doc ?(columnar1000 = 2.0e-5) () =
  J.Obj
    [
      ("bench", J.String "scaling");
      ("full", J.Bool false);
      ("columnar_throughput_cliff_ratio", J.Float 2.1);
      ( "rows",
        J.List
          [
            J.Obj
              [
                ("edges", J.Int 1000);
                ("boxed_s", J.Float 2.4e-4);
                ("convert_s", J.Float 2.2e-5);
                ("columnar_s", J.Float columnar1000);
                ("columnar_segments_per_s", J.Float 3.8e7);
                ("reordered_solve_s", J.Float 1.8e-5);
                ("reordered_segments_per_s", J.Float 5.5e7);
                ("par_solve_s", J.Float 1.9e-5);
                ("par_segments_per_s", J.Float 5.2e7);
                ("speedup", J.Float 9.0);
              ];
            J.Obj
              [
                ("edges", J.Int 3000);
                ("boxed_s", J.Float 4.0e-4);
                ("columnar_s", J.Float 7.4e-5);
                ("columnar_segments_per_s", J.Float 4.0e7);
                ("speedup", J.Float 5.4);
              ];
          ] );
    ]

let test_metrics_of_obs () =
  let ms = H.metrics_of_result obs_doc in
  Alcotest.(check int) "six obs metrics" 6 (List.length ms);
  check_close "ratio extracted" 1.1 (List.assoc "metrics_on_ratio" ms);
  Alcotest.(check bool) "iteration count is not a metric" true
    (List.assoc_opt "iterations" ms = None)

let test_metrics_of_scaling () =
  let ms = H.metrics_of_result (scaling_doc ()) in
  (* 9 keys in the full first row + 4 in the second + the top-level
     cliff ratio. Rows missing the newer keys (older results) still
     extract what they have. *)
  Alcotest.(check int) "per-size metrics plus cliff" 14 (List.length ms);
  check_close "per-size key" 2.0e-5 (List.assoc "columnar_s@1000" ms);
  check_close "second row keyed separately" 7.4e-5
    (List.assoc "columnar_s@3000" ms);
  check_close "convert extracted" 2.2e-5 (List.assoc "convert_s@1000" ms);
  check_close "reordered throughput extracted" 5.5e7
    (List.assoc "reordered_segments_per_s@1000" ms);
  check_close "par solve extracted" 1.9e-5 (List.assoc "par_solve_s@1000" ms);
  check_close "top-level cliff ratio extracted" 2.1
    (List.assoc "columnar_throughput_cliff_ratio" ms);
  Alcotest.(check bool) "absent keys stay absent" true
    (List.assoc_opt "convert_s@3000" ms = None)

let test_cliff_ratio_direction () =
  (* The cliff ratio carries the [_ratio] suffix: lower is better, so an
     increase past threshold must gate as a regression. *)
  Alcotest.(check bool) "ratio is lower-better" true
    (H.direction_of_metric "columnar_throughput_cliff_ratio" = H.Lower_better);
  Alcotest.(check bool) "throughput is higher-better" true
    (H.direction_of_metric "reordered_segments_per_s@30000" = H.Higher_better)

let test_metrics_generic () =
  let doc =
    J.Obj
      [
        ("bench", J.String "custom");
        ("wall_s", J.Float 0.5);
        ("hit_ratio", J.Float 0.9);
        ("speedup", J.Float 2.0);
        ("label", J.String "not a number");
        ("count", J.Int 7); (* no measurement suffix *)
      ]
  in
  let ms = H.metrics_of_result doc in
  Alcotest.(check int) "three measurements" 3 (List.length ms);
  Alcotest.(check bool) "count filtered out" true
    (List.assoc_opt "count" ms = None)

(* ---------------------------------------------------------------- *)
(* History round-trip and file IO                                    *)

let entry bench metrics =
  { H.bench; rev = "abc123"; timestamp = "2026-08-06T00:00:00Z";
    full = false; metrics }

let test_entry_roundtrip () =
  let e = entry "obs" [ ("off_s", 0.002); ("metrics_on_ratio", 1.1) ] in
  let line = J.to_string (H.entry_to_json e) in
  match Ji.parse line with
  | Error msg -> Alcotest.failf "entry line unreadable: %s" msg
  | Ok doc -> begin
    match H.entry_of_json doc with
    | Error msg -> Alcotest.failf "entry rejected: %s" msg
    | Ok e' ->
      Alcotest.(check string) "bench" e.H.bench e'.H.bench;
      Alcotest.(check string) "rev" e.H.rev e'.H.rev;
      Alcotest.(check string) "timestamp" e.H.timestamp e'.H.timestamp;
      Alcotest.(check bool) "full" e.H.full e'.H.full;
      Alcotest.(check int) "metrics" 2 (List.length e'.H.metrics);
      check_close "metric value" 1.1 (List.assoc "metrics_on_ratio" e'.H.metrics)
  end

let test_history_file_io () =
  let path = Filename.temp_file "t_history" ".jsonl" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (match H.load path with
      | Ok [] -> ()
      | Ok _ -> Alcotest.fail "missing file should read as empty"
      | Error msg -> Alcotest.failf "missing file errored: %s" msg);
      let e1 = entry "obs" [ ("off_s", 0.002) ] in
      let e2 = entry "scaling" [ ("columnar_s@1000", 2e-5) ] in
      (match (H.append path e1, H.append path e2) with
      | Ok (), Ok () -> ()
      | Error m, _ | _, Error m -> Alcotest.failf "append failed: %s" m);
      (match H.load path with
      | Ok [ a; b ] ->
        Alcotest.(check string) "oldest first" "obs" a.H.bench;
        Alcotest.(check string) "newest last" "scaling" b.H.bench
      | Ok es -> Alcotest.failf "expected 2 entries, got %d" (List.length es)
      | Error msg -> Alcotest.failf "load failed: %s" msg);
      (* A malformed line is an error naming its line number. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{broken\n";
      close_out oc;
      match H.load path with
      | Ok _ -> Alcotest.fail "accepted corrupt history"
      | Error msg ->
        Alcotest.(check bool) ("names line 3: " ^ msg) true
          (let rec contains_sub i =
             i + 2 <= String.length msg
             && (String.sub msg i 2 = ":3" || contains_sub (i + 1))
           in
           contains_sub 0))

(* ---------------------------------------------------------------- *)
(* Comparison: the regression gate                                   *)

let extract bench doc =
  match H.entry_of_result ~rev:"r" ~timestamp:"t" doc with
  | Ok e -> { e with H.bench }
  | Error msg -> Alcotest.failf "extraction failed: %s" msg

(* Acceptance criterion: two identical runs never regress; a
   synthetically inflated run trips the gate. *)
let test_identical_runs_no_regression () =
  let e = extract "scaling" (scaling_doc ()) in
  let v = H.compare_entry ~history:[ e; e; e ] e in
  Alcotest.(check int) "baseline present" 3 v.H.v_baseline_runs;
  Alcotest.(check int) "zero regressions" 0 v.H.v_regressions;
  Alcotest.(check int) "zero improvements" 0 v.H.v_improvements;
  Alcotest.(check bool) "nothing gated" false (H.regressed [ v ]);
  List.iter
    (fun (i : H.item) ->
      Alcotest.(check bool) (i.H.metric ^ " ok") true (i.H.status = H.Ok_);
      check_close ~atol:1e-9 (i.H.metric ^ " delta zero") 0.
        (Option.get i.H.delta_pct))
    v.H.v_items

let test_inflated_run_trips_gate () =
  let base = extract "scaling" (scaling_doc ()) in
  (* 1.3x the columnar_s@1000 wall time: past the 25% scaling budget. *)
  let inflated = extract "scaling" (scaling_doc ~columnar1000:2.6e-5 ()) in
  let v = H.compare_entry ~history:[ base; base ] inflated in
  Alcotest.(check bool) "gate trips" true (H.regressed [ v ]);
  let item =
    List.find (fun (i : H.item) -> i.H.metric = "columnar_s@1000") v.H.v_items
  in
  Alcotest.(check bool) "the inflated metric regressed" true
    (item.H.status = H.Regression);
  check_close ~rtol:1e-6 "delta is +30%" 30. (Option.get item.H.delta_pct);
  (* Everything else stayed within budget. *)
  Alcotest.(check int) "exactly one regression" 1 v.H.v_regressions

let test_higher_better_direction () =
  Alcotest.(check bool) "throughput is higher-better" true
    (H.direction_of_metric "columnar_segments_per_s@1000" = H.Higher_better);
  Alcotest.(check bool) "speedup is higher-better" true
    (H.direction_of_metric "speedup@3000" = H.Higher_better);
  Alcotest.(check bool) "wall time is lower-better" true
    (H.direction_of_metric "columnar_s@1000" = H.Lower_better);
  (* A throughput drop registers as a positive (worsening) delta. *)
  let mk v = entry "scaling" [ ("columnar_segments_per_s@1000", v) ] in
  let v = H.compare_entry ~history:[ mk 4.0e7 ] (mk 2.0e7) in
  let item = List.hd v.H.v_items in
  check_close ~rtol:1e-9 "half the throughput = +50%" 50.
    (Option.get item.H.delta_pct);
  Alcotest.(check bool) "drop regresses" true (item.H.status = H.Regression);
  (* And a throughput gain counts as an improvement, not a regression. *)
  let v' = H.compare_entry ~history:[ mk 2.0e7 ] (mk 4.0e7) in
  Alcotest.(check int) "gain does not regress" 0 v'.H.v_regressions;
  Alcotest.(check int) "gain improves" 1 v'.H.v_improvements

let test_baseline_window_and_median () =
  let mk v = entry "obs" [ ("off_s", v) ] in
  (* Seven runs; only the last [window] = 5 count, and the median of
     those absorbs the one outlier. *)
  let history = [ mk 99.; mk 99.; mk 1.0; mk 1.1; mk 50.; mk 0.9; mk 1.0 ] in
  let v = H.compare_entry ~window:5 ~history (mk 1.05) in
  Alcotest.(check int) "window bounds the baseline" 5 v.H.v_baseline_runs;
  let item = List.hd v.H.v_items in
  check_close ~rtol:1e-9 "median of last five" 1.0 (Option.get item.H.baseline);
  Alcotest.(check bool) "5% above median is ok" true (item.H.status = H.Ok_)

let test_baseline_isolation () =
  (* Different bench names and full flags never share a baseline. *)
  let scaling = entry "scaling" [ ("x_s", 1.0) ] in
  let obs = entry "obs" [ ("x_s", 999.0) ] in
  let full_run = { (entry "scaling" [ ("x_s", 999.0) ]) with H.full = true } in
  let v = H.compare_entry ~history:[ obs; full_run; scaling ] scaling in
  Alcotest.(check int) "only the matching run counts" 1 v.H.v_baseline_runs;
  let item = List.hd v.H.v_items in
  check_close ~rtol:1e-9 "baseline from the matching run only" 1.0
    (Option.get item.H.baseline)

let test_no_baseline_never_regresses () =
  let e = entry "obs" [ ("off_s", 0.002); ("new_metric_s", 1.0) ] in
  let v = H.compare_entry ~history:[] e in
  Alcotest.(check int) "no baseline runs" 0 v.H.v_baseline_runs;
  Alcotest.(check int) "nothing regresses" 0 v.H.v_regressions;
  List.iter
    (fun (i : H.item) ->
      Alcotest.(check bool) (i.H.metric ^ " marked") true
        (i.H.status = H.No_baseline))
    v.H.v_items;
  (* Same for a metric that only exists in the current run. *)
  let hist = entry "obs" [ ("off_s", 0.002) ] in
  let v' = H.compare_entry ~history:[ hist ] e in
  let fresh =
    List.find (fun (i : H.item) -> i.H.metric = "new_metric_s") v'.H.v_items
  in
  Alcotest.(check bool) "fresh metric has no baseline" true
    (fresh.H.status = H.No_baseline)

let test_verdict_json () =
  let e = extract "scaling" (scaling_doc ()) in
  let v = H.compare_entry ~history:[ e ] e in
  let json = J.to_string (H.verdict_to_json v) in
  match Ji.parse json with
  | Error msg -> Alcotest.failf "verdict JSON unreadable: %s" msg
  | Ok doc ->
    Alcotest.(check (option string)) "bench name" (Some "scaling")
      (Option.bind (Ji.member "bench" doc) Ji.string_value);
    (match Option.bind (Ji.member "items" doc) Ji.list_value with
    | Some items ->
      Alcotest.(check int) "one item per metric" (List.length v.H.v_items)
        (List.length items)
    | None -> Alcotest.fail "verdict lacks items")

let suites =
  [
    ( "history.json_in",
      [
        case "values and escapes" test_json_in_values;
        case "rejects malformed input" test_json_in_rejects;
        case "reads back Json_out" test_json_in_roundtrip_emitter;
      ] );
    ( "history.metrics",
      [
        case "obs schema" test_metrics_of_obs;
        case "scaling schema keyed per size" test_metrics_of_scaling;
        case "cliff ratio direction" test_cliff_ratio_direction;
        case "generic measurement suffixes" test_metrics_generic;
      ] );
    ( "history.store",
      [
        case "entry JSON round-trip" test_entry_roundtrip;
        case "append/load and corrupt lines" test_history_file_io;
      ] );
    ( "history.gate",
      [
        case "identical runs never regress" test_identical_runs_no_regression;
        case "inflated run trips the gate" test_inflated_run_trips_gate;
        case "direction-aware deltas" test_higher_better_direction;
        case "rolling median over the window" test_baseline_window_and_median;
        case "bench/full baselines isolated" test_baseline_isolation;
        case "no baseline never regresses" test_no_baseline_never_regresses;
        case "verdict serializes" test_verdict_json;
      ] );
  ]
