open T_helpers
module Jx = Obs.Jsonx
module Jin = Emflow.Json_in
module Jout = Emflow.Json_out

(* The observability exporters (Chrome traces, speedscope profiles, log
   JSON) build documents with Obs.Jsonx from hostile inputs: span names
   out of netlists, error messages, raw bytes. Property: whatever goes
   in, the emission is JSON our own reader accepts, and the sanitizer is
   a retraction (sanitizing twice = sanitizing once). *)

(* Arbitrary bytes, weighted toward the troublemakers: control
   characters, quotes/backslashes, invalid UTF-8 lead/continuation
   bytes, and valid multibyte sequences cut in half. *)
let hostile_string =
  QCheck2.Gen.(
    let hostile_char =
      oneof
        [
          char_range '\x00' '\x1f'; char_range '\x80' '\xff';
          oneofl [ '"'; '\\'; '/' ]; char_range ' ' '~';
        ]
    in
    let fragment =
      oneof
        [
          map (String.make 1) hostile_char;
          (* valid multibyte sequences, whole... *)
          oneofl [ "é"; "λ"; "→"; "€"; "𝄞"; "\xef\xbf\xbd" ];
          (* ...and truncated, to hit the resynchronization paths *)
          oneofl [ "\xc3"; "\xe2\x82"; "\xf0\x9d\x84" ];
        ]
    in
    map (String.concat "") (list_size (int_range 0 24) fragment))

let parse_string_exn text =
  match Jin.parse text with
  | Ok (Jout.String v) -> v
  | Ok _ -> Alcotest.failf "%S parsed to a non-string" text
  | Error e -> Alcotest.failf "%S does not parse: %s" text e

let test_escape_roundtrip =
  qcheck ~count:500 "Jsonx.escape emits parseable JSON; sanitizing is stable"
    hostile_string
    (fun s ->
      let escaped = Jx.escape s in
      Alcotest.(check bool) "acceptor agrees" true (T_obs.json_accepts escaped);
      let v = parse_string_exn escaped in
      (* v is s with invalid bytes replaced; escaping it again must be a
         fixed point, and it must itself be valid UTF-8 end to end. *)
      Alcotest.(check string) "sanitize-escape is idempotent" escaped
        (Jx.escape v);
      let i = ref 0 in
      while !i < String.length v do
        let n = Jx.utf8_seq_len v !i in
        if n = 0 then
          Alcotest.failf "invalid UTF-8 leaked at byte %d of %S" !i v;
        i := !i + n
      done;
      true)

let test_escape_preserves_valid =
  qcheck ~count:200 "valid printable input survives the round-trip unchanged"
    QCheck2.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 40))
    (fun s -> parse_string_exn (Jx.escape s) = s)

let test_add_float_roundtrip =
  qcheck ~count:500 "add_float round-trips through the parser bit-exactly"
    QCheck2.Gen.float
    (fun f ->
      let buf = Buffer.create 32 in
      Jx.add_float buf f;
      let doc = Jin.parse_exn (Buffer.contents buf) in
      if Float.is_finite f then
        match Jin.number doc with
        | Some g -> Int64.bits_of_float g = Int64.bits_of_float f
        | None -> false
      else (* JSON has no NaN/Infinity: emitted as null *)
        doc = Jout.Null)

let test_control_chars_escaped () =
  (* Every control character must come out as an escape, never raw. *)
  for c = 0 to 0x1f do
    let escaped = Jx.escape (String.make 1 (Char.chr c)) in
    Alcotest.(check bool)
      (Printf.sprintf "0x%02x accepted" c)
      true
      (T_obs.json_accepts escaped);
    String.iter
      (fun ch ->
        if Char.code ch < 0x20 then
          Alcotest.failf "raw control byte 0x%02x leaked" (Char.code ch))
      escaped;
    Alcotest.(check string)
      (Printf.sprintf "0x%02x round-trips" c)
      (String.make 1 (Char.chr c))
      (parse_string_exn escaped)
  done

let test_deep_nesting () =
  (* A deeply nested emission (200 levels of arrays and objects with
     Jsonx-escaped hostile keys) must stay within what Json_in parses —
     both sides are recursive descent, so this guards their budgets
     against each other. *)
  let depth = 200 in
  let buf = Buffer.create 4096 in
  for _ = 1 to depth do
    Buffer.add_char buf '[';
    Buffer.add_char buf '{';
    Jx.add_string buf "k\xffey";
    Buffer.add_char buf ':'
  done;
  Jx.add_string buf "bottom";
  for _ = 1 to depth do
    Buffer.add_string buf "},"
  done;
  (* Replace the trailing comma of the innermost closer sequence by
     closing the arrays properly: rebuild the tail. *)
  let text = Buffer.sub buf 0 (Buffer.length buf - (2 * depth)) in
  let closers = Buffer.create (2 * depth) in
  for _ = 1 to depth do
    Buffer.add_string closers "}]"
  done;
  let doc_text = text ^ Buffer.contents closers in
  Alcotest.(check bool) "deep doc accepted" true (T_obs.json_accepts doc_text);
  match Jin.parse doc_text with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "deep nesting failed to parse: %s" e

let suites =
  [
    ( "jsonx",
      [
        test_escape_roundtrip;
        test_escape_preserves_valid;
        test_add_float_roundtrip;
        case "control characters always escape" test_control_chars_escaped;
        case "deep nesting parses back" test_deep_nesting;
      ] );
  ]
