(* Run-ledger contract: byte-identical JSON round-trips, the archive's
   append/rotate/load lifecycle, run resolution, fingerprint-keyed diff
   semantics and cross-run history — plus entries_of_result against a
   real flow run. *)

open T_helpers
module Lg = Emflow.Ledger
module Fp = Em_core.Fingerprint
module Jo = Emflow.Json_out
module Ji = Emflow.Json_in
module Ex = Emflow.Extract
module Flow = Emflow.Em_flow
module Gg = Pdn.Grid_gen
module Cc = Em_core.Compact
module M = Em_core.Material

(* ---------------------------------------------------------------- *)
(* Synthetic fixtures                                                *)

let fp_of c = String.make 32 c

let mk_entry ?(fp = fp_of 'a') ?(occ = 0) ?(layer = 1) ?(nodes = 5)
    ?(segments = 4) ?(ok = true) ?(immortal = true) ?(margin = 2.5e8)
    ?(solve = 1.25e-4) ?(residual = None) ?(diags = []) () =
  {
    Lg.en_fp = fp;
    en_occ = occ;
    en_layer = layer;
    en_nodes = nodes;
    en_segments = segments;
    en_ok = ok;
    en_immortal = immortal;
    en_margin_pa = margin;
    en_solve_s = solve;
    en_worst_residual = residual;
    en_diags = diags;
  }

let mk_run ?(id = fp_of '0') ?(timestamp = "2026-08-09T00:00:00Z")
    ?(entries = []) () =
  let count p = List.length (List.filter p entries) in
  {
    Lg.rn_id = id;
    rn_timestamp = timestamp;
    rn_deck = "deck.sp";
    rn_deck_hash = fp_of 'd';
    rn_tech = "ibm-like";
    rn_engine = "fused";
    rn_jobs = 1;
    rn_audited = false;
    rn_sigma_th_pa = 4.1e7;
    rn_structures = List.length entries;
    rn_segments =
      List.fold_left (fun acc (e : Lg.entry) -> acc + e.Lg.en_segments) 0 entries;
    rn_immortal = count (fun (e : Lg.entry) -> e.Lg.en_ok && e.Lg.en_immortal);
    rn_mortal = count (fun (e : Lg.entry) -> e.Lg.en_ok && not e.Lg.en_immortal);
    rn_failed = count (fun (e : Lg.entry) -> not e.Lg.en_ok);
    rn_analysis_s = 0.125;
    rn_entries = entries;
  }

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "t_ledger-%d-%d" (Unix.getpid ()) !n)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let with_tmp_dir f =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let ok_or_fail = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* ---------------------------------------------------------------- *)
(* Serialization                                                     *)

let test_roundtrip_byte_identical () =
  let entries =
    [
      (* A value whose shortest round-trip rendering is non-trivial. *)
      mk_entry ~solve:(0.1 +. 0.2) ();
      mk_entry ~fp:(fp_of 'b') ~immortal:false ~margin:(-3.75e7)
        ~residual:(Some 1.5e-12) ~diags:[ "audit-residual" ] ();
      (* Fault-isolated: nan margin must be omitted, not nulled. *)
      mk_entry ~fp:(fp_of 'c') ~ok:false ~immortal:false ~margin:Float.nan
        ~solve:0. ~diags:[ "degenerate-structure" ] ();
    ]
  in
  let r = mk_run ~entries () in
  let s1 = Jo.to_string (Lg.run_to_json r) in
  Alcotest.(check bool) "no nulls in the record" false
    (let rec has i =
       i + 4 <= String.length s1 && (String.sub s1 i 4 = "null" || has (i + 1))
     in
     has 0);
  let r2 = ok_or_fail (Result.bind (Ji.parse s1) Lg.run_of_json) in
  Alcotest.(check string) "byte-identical re-serialization" s1
    (Jo.to_string (Lg.run_to_json r2));
  let e3 = List.nth r2.Lg.rn_entries 2 in
  Alcotest.(check bool) "nan margin reads back as nan" true
    (Float.is_nan e3.Lg.en_margin_pa);
  Alcotest.(check bool) "residual round-trips" true
    ((List.nth r2.Lg.rn_entries 1).Lg.en_worst_residual = Some 1.5e-12)

let test_readback_rejects () =
  (match Lg.run_of_json (Jo.Obj [ ("schema", Jo.String "not-a-ledger") ]) with
  | Ok _ -> Alcotest.fail "unknown schema accepted"
  | Error msg ->
    Alcotest.(check bool) "error names the schema" true
      (T_obs.contains msg "not-a-ledger"));
  match Lg.run_of_json (Jo.Obj [ ("schema", Jo.String "emledger1") ]) with
  | Ok _ -> Alcotest.fail "missing fields accepted"
  | Error msg ->
    Alcotest.(check bool) "error names the missing field" true
      (T_obs.contains msg "missing field")

(* ---------------------------------------------------------------- *)
(* Archive                                                           *)

let test_append_load_resolve () =
  with_tmp_dir (fun dir ->
      Alcotest.(check bool) "missing dir is an empty archive" true
        (ok_or_fail (Lg.load ~dir) = []);
      let ids = [ fp_of '1'; fp_of '2'; fp_of '3' ] in
      List.iter
        (fun id -> ok_or_fail (Lg.append ~dir (mk_run ~id ())))
        ids;
      let runs = ok_or_fail (Lg.load ~dir) in
      Alcotest.(check (list string)) "oldest first" ids
        (List.map (fun r -> r.Lg.rn_id) runs);
      let id_of sel = (ok_or_fail (Lg.resolve runs sel)).Lg.rn_id in
      Alcotest.(check string) "latest" (fp_of '3') (id_of "latest");
      Alcotest.(check string) "prev" (fp_of '2') (id_of "prev");
      Alcotest.(check string) "full id" (fp_of '1') (id_of (fp_of '1'));
      Alcotest.(check string) "unique prefix" (fp_of '2')
        (id_of (String.make 6 '2'));
      (match Lg.resolve runs "zzzz" with
      | Ok _ -> Alcotest.fail "unknown selector resolved"
      | Error _ -> ());
      (match Lg.resolve runs "1" with
      | Ok _ -> Alcotest.fail "1-char prefix resolved"
      | Error msg ->
        Alcotest.(check bool) "error explains the prefix rule" true
          (T_obs.contains msg "at least 4 characters"));
      (* Two ids sharing a >= 4 char prefix are ambiguous. *)
      ok_or_fail
        (Lg.append ~dir (mk_run ~id:(String.make 4 '1' ^ String.make 28 'e') ()));
      let runs = ok_or_fail (Lg.load ~dir) in
      match Lg.resolve runs (String.make 4 '1') with
      | Ok _ -> Alcotest.fail "ambiguous prefix resolved"
      | Error msg ->
        Alcotest.(check bool) "ambiguity error lists candidates" true
          (T_obs.contains msg "ambiguous"))

let test_rotation () =
  with_tmp_dir (fun dir ->
      (* Every record is far larger than the cap, so each append after
         the first rotates; keep_rotated 2 drops the oldest runs. *)
      let ids = List.map (fun c -> fp_of c) [ '1'; '2'; '3'; '4'; '5' ] in
      List.iter
        (fun id ->
          ok_or_fail
            (Lg.append ~max_bytes:64 ~keep_rotated:2 ~dir (mk_run ~id ())))
        ids;
      Alcotest.(check bool) "active file present" true
        (Sys.file_exists (Lg.ledger_path dir));
      Alcotest.(check bool) "first rotation present" true
        (Sys.file_exists (Filename.concat dir "ledger.1.jsonl"));
      Alcotest.(check bool) "second rotation present" true
        (Sys.file_exists (Filename.concat dir "ledger.2.jsonl"));
      Alcotest.(check bool) "beyond keep_rotated dropped" false
        (Sys.file_exists (Filename.concat dir "ledger.3.jsonl"));
      let runs = ok_or_fail (Lg.load ~dir) in
      Alcotest.(check (list string)) "load spans rotations, oldest first"
        [ fp_of '3'; fp_of '4'; fp_of '5' ]
        (List.map (fun r -> r.Lg.rn_id) runs))

let test_load_rejects_malformed () =
  with_tmp_dir (fun dir ->
      ok_or_fail (Lg.append ~dir (mk_run ()));
      let oc =
        open_out_gen [ Open_append ] 0o644 (Lg.ledger_path dir)
      in
      output_string oc "{ this is not json\n";
      close_out oc;
      match Lg.load ~dir with
      | Ok _ -> Alcotest.fail "malformed line accepted"
      | Error msg ->
        Alcotest.(check bool) "error names file and line" true
          (T_obs.contains msg "ledger.jsonl:2"))

(* ---------------------------------------------------------------- *)
(* Diff                                                              *)

let diff_fixture () =
  let a =
    mk_run ~id:(fp_of 'A')
      ~entries:
        [
          mk_entry ~fp:(fp_of '1') ~layer:1 ~nodes:5 ~segments:4 ~margin:2.0e8
            ~solve:1e-4 ();
          mk_entry ~fp:(fp_of '2') ~layer:2 ~nodes:6 ~segments:5 ~margin:1.0e8 ();
          mk_entry ~fp:(fp_of '3') ~layer:3 ~nodes:7 ~segments:6 ~ok:false
            ~immortal:false ~margin:Float.nan ();
          mk_entry ~fp:(fp_of '4') ~layer:4 ~nodes:8 ~segments:7 ~margin:1.0e8 ();
          mk_entry ~fp:(fp_of '6') ~occ:0 ~layer:5 ~nodes:3 ~segments:2
            ~margin:5e7 ();
          mk_entry ~fp:(fp_of '6') ~occ:1 ~layer:5 ~nodes:3 ~segments:2
            ~margin:5e7 ();
          mk_entry ~fp:(fp_of '7') ~layer:6 ~nodes:9 ~segments:8 ~margin:1.0e8 ();
        ]
      ()
  in
  let b =
    mk_run ~id:(fp_of 'B')
      ~entries:
        [
          mk_entry ~fp:(fp_of '1') ~layer:1 ~nodes:5 ~segments:4 ~margin:2.3e8
            ~solve:2e-4 ();
          mk_entry ~fp:(fp_of '2') ~layer:2 ~nodes:6 ~segments:5 ~immortal:false
            ~margin:(-5.0e7) ();
          mk_entry ~fp:(fp_of '3') ~layer:3 ~nodes:7 ~segments:6 ~margin:9e7 ();
          (* fp '4' edited: same (layer, nodes, segments) shape, new
             fingerprint, verdict went immortal -> mortal. *)
          mk_entry ~fp:(fp_of 'e') ~layer:4 ~nodes:8 ~segments:7 ~immortal:false
            ~margin:(-1e7) ();
          mk_entry ~fp:(fp_of '6') ~occ:0 ~layer:5 ~nodes:3 ~segments:2
            ~margin:5e7 ();
          mk_entry ~fp:(fp_of '6') ~occ:1 ~layer:5 ~nodes:3 ~segments:2
            ~margin:5e7 ();
          mk_entry ~fp:(fp_of '8') ~layer:7 ~nodes:11 ~segments:10 ~margin:2e8 ();
        ]
      ()
  in
  (a, b)

let test_diff_semantics () =
  let a, b = diff_fixture () in
  let d = Lg.diff a b in
  Alcotest.(check int) "matched by (fp, occ)" 5 (List.length d.Lg.df_matched);
  Alcotest.(check int) "verdict flips" 2 d.Lg.df_verdict_flips;
  Alcotest.(check int) "regressions: one flip + one edited immortal->mortal" 2
    d.Lg.df_regressions;
  Alcotest.(check int) "changed re-identified by shape" 1
    (List.length d.Lg.df_changed);
  (match d.Lg.df_changed with
  | [ c ] ->
    Alcotest.(check string) "changed pairs old fp" (fp_of '4') c.Lg.dc_fp_a;
    Alcotest.(check string) "changed pairs new fp" (fp_of 'e') c.Lg.dc_fp_b;
    Alcotest.(check bool) "edit went immortal -> mortal" true
      (c.Lg.dc_immortal_a && not c.Lg.dc_immortal_b)
  | _ -> Alcotest.fail "expected exactly one changed pair");
  Alcotest.(check (list string)) "added" [ fp_of '8' ]
    (List.map (fun (e : Lg.entry) -> e.Lg.en_fp) d.Lg.df_added);
  Alcotest.(check (list string)) "removed" [ fp_of '7' ]
    (List.map (fun (e : Lg.entry) -> e.Lg.en_fp) d.Lg.df_removed);
  check_close "max |margin drift|" 1.5e8 d.Lg.df_max_abs_margin_drift;
  (let flips =
     List.filter (fun m -> m.Lg.dm_flip <> `None) d.Lg.df_matched
   in
   Alcotest.(check bool) "flip kinds" true
     (List.exists (fun m -> m.Lg.dm_flip = `To_mortal) flips
     && List.exists (fun m -> m.Lg.dm_flip = `To_ok) flips));
  (* Movers exclude zero and non-finite deltas, largest first. *)
  (match Lg.top_movers d with
  | [ m1; m2 ] ->
    Alcotest.(check string) "largest mover" (fp_of '2') m1.Lg.dm_fp;
    Alcotest.(check string) "second mover" (fp_of '1') m2.Lg.dm_fp;
    check_close "mover delta" (-1.5e8) m1.Lg.dm_margin_delta
  | ms -> Alcotest.failf "expected 2 movers, got %d" (List.length ms));
  (match Lg.top_movers ~k:1 d with
  | [ m ] -> Alcotest.(check string) "k bounds movers" (fp_of '2') m.Lg.dm_fp
  | ms -> Alcotest.failf "expected 1 mover, got %d" (List.length ms));
  (* The JSON summary mirrors the record. *)
  let j = Lg.diff_to_json d in
  let summary = Option.get (Ji.member "summary" j) in
  let get name =
    int_of_float (Option.get (Ji.number (Option.get (Ji.member name summary))))
  in
  Alcotest.(check int) "json matched" 5 (get "matched");
  Alcotest.(check int) "json regressions" 2 (get "regressions");
  Alcotest.(check int) "json changed" 1 (get "changed")

let test_diff_identical_runs () =
  let a, _ = diff_fixture () in
  let d = Lg.diff a { a with Lg.rn_id = fp_of 'C' } in
  Alcotest.(check int) "all matched" (List.length a.Lg.rn_entries)
    (List.length d.Lg.df_matched);
  Alcotest.(check int) "no flips" 0 d.Lg.df_verdict_flips;
  Alcotest.(check int) "no regressions" 0 d.Lg.df_regressions;
  Alcotest.(check int) "nothing changed" 0 (List.length d.Lg.df_changed);
  Alcotest.(check int) "nothing added" 0 (List.length d.Lg.df_added);
  Alcotest.(check int) "nothing removed" 0 (List.length d.Lg.df_removed);
  Alcotest.(check (float 0.)) "zero drift" 0. d.Lg.df_max_abs_margin_drift;
  Alcotest.(check int) "no movers" 0 (List.length (Lg.top_movers d))

(* ---------------------------------------------------------------- *)
(* History                                                           *)

let test_history () =
  let e_x margin = mk_entry ~fp:(fp_of 'x') ~layer:2 ~margin ~solve:1e-3 () in
  let e_y = mk_entry ~fp:(fp_of 'y') ~layer:3 ~ok:false ~immortal:false
      ~margin:Float.nan ()
  in
  let e_z = mk_entry ~fp:(fp_of 'z') ~layer:4 ~margin:7e7 () in
  let r1 = mk_run ~id:(fp_of '1') ~entries:[ e_x 1e8; e_y ] () in
  let r2 = mk_run ~id:(fp_of '2') ~entries:[ e_x 2e8; e_z ] () in
  let r3 = mk_run ~id:(fp_of '3') ~entries:[ e_x 3e8 ] () in
  let trends = Lg.history ~metric:`Margin [ r1; r2; r3 ] in
  Alcotest.(check (list string)) "first-appearance order"
    [ fp_of 'x'; fp_of 'y'; fp_of 'z' ]
    (List.map (fun t -> t.Lg.tr_fp) trends);
  (match trends with
  | [ tx; ty; tz ] ->
    Alcotest.(check (list string)) "points span the archive, oldest first"
      [ fp_of '1'; fp_of '2'; fp_of '3' ]
      (List.map fst tx.Lg.tr_points);
    check_close "margin values tracked" 2e8 (snd (List.nth tx.Lg.tr_points 1));
    Alcotest.(check int) "nan margins contribute no point" 0
      (List.length ty.Lg.tr_points);
    Alcotest.(check int) "late appearance tracked" 1
      (List.length tz.Lg.tr_points)
  | _ -> Alcotest.fail "expected three trends");
  match Lg.history ~metric:`Time [ r1; r2; r3 ] with
  | tx :: _ -> check_close "time metric reads solve_s" 1e-3
      (snd (List.hd tx.Lg.tr_points))
  | [] -> Alcotest.fail "expected trends"

(* ---------------------------------------------------------------- *)
(* entries_of_result against a real flow run                         *)

let small_grid () =
  Gg.generate
    {
      Gg.tech = Pdn.Tech.ibm_like;
      die_width = 2e-3;
      die_height = 2e-3;
      stripe_counts = [| 20; 16; 8; 4 |];
      pad_every = 4;
      load_fraction = 0.4;
      current_per_net = 1.0;
      bottom_tap_pitch = None;
      voltage_domains = 1;
      seed = 11L;
    }

let test_entries_of_result () =
  let g = small_grid () in
  let sol = Spice.Mna.solve g.Gg.netlist in
  let compacts = Ex.extract_compact ~tech:g.Gg.tech sol in
  let r = Flow.run_on_compact compacts in
  let entries = Lg.entries_of_result compacts r in
  Alcotest.(check int) "one entry per structure" (List.length compacts)
    (List.length entries);
  List.iteri
    (fun i (e : Lg.entry) ->
      let cs = List.nth compacts i in
      Alcotest.(check string) "fingerprint matches direct computation"
        (Fp.of_compact ~layer:cs.Ex.cs_layer_level ~material:M.cu_dac21
           cs.Ex.compact)
        e.Lg.en_fp;
      Alcotest.(check int) "layer" cs.Ex.cs_layer_level e.Lg.en_layer;
      Alcotest.(check int) "nodes" (Cc.num_nodes cs.Ex.compact) e.Lg.en_nodes;
      Alcotest.(check int) "segments" (Cc.num_segments cs.Ex.compact)
        e.Lg.en_segments;
      Alcotest.(check bool) "clean run analyzes every structure" true
        e.Lg.en_ok;
      Alcotest.(check bool) "finite margin" true
        (Float.is_finite e.Lg.en_margin_pa);
      Alcotest.(check bool) "margin sign agrees with the verdict" true
        (e.Lg.en_immortal = (e.Lg.en_margin_pa > 0.));
      Alcotest.(check bool) "unaudited run carries no residual" true
        (e.Lg.en_worst_residual = None))
    entries;
  check_raises_invalid "length mismatch rejected" (fun () ->
      Lg.entries_of_result (List.tl compacts) r)

(* ---------------------------------------------------------------- *)
(* Live endpoint + metrics                                           *)

let test_runs_snapshot () =
  with_tmp_dir (fun dir ->
      let j =
        Ji.parse_exn (Lg.runs_snapshot_json ~dir ~run_id:"live-run")
      in
      Alcotest.(check (option bool)) "enabled" (Some true)
        (Option.bind (Ji.member "enabled" j) Ji.bool_value);
      Alcotest.(check (option string)) "run id" (Some "live-run")
        (Option.bind (Ji.member "run_id" j) Ji.string_value);
      Alcotest.(check (option (float 0.))) "empty archive" (Some 0.)
        (Option.bind (Ji.member "runs" j) Ji.number);
      Alcotest.(check bool) "no latest yet" true
        (Ji.member "latest" j = Some Jo.Null);
      ok_or_fail (Lg.append ~dir (mk_run ~id:(fp_of '9') ()));
      let j =
        Ji.parse_exn (Lg.runs_snapshot_json ~dir ~run_id:"live-run")
      in
      Alcotest.(check (option (float 0.))) "sees the appended run" (Some 1.)
        (Option.bind (Ji.member "runs" j) Ji.number);
      let latest = Option.get (Ji.member "latest" j) in
      Alcotest.(check (option string)) "latest id" (Some (fp_of '9'))
        (Option.bind (Ji.member "id" latest) Ji.string_value))

let test_metrics_registered () =
  let exposition = Obs.Metrics.to_prometheus () in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("registry has " ^ name) true
        (T_obs.contains exposition name))
    [
      "em_ledger_runs_recorded_total"; "em_ledger_structures_matched_total";
      "em_ledger_structures_changed_total";
    ]

let suites =
  [
    ( "ledger.serialization",
      [
        case "run record round-trips byte-identically"
          test_roundtrip_byte_identical;
        case "readback rejects bad schema and missing fields"
          test_readback_rejects;
      ] );
    ( "ledger.archive",
      [
        case "append, load and resolve" test_append_load_resolve;
        case "size-capped rotation" test_rotation;
        case "malformed lines are named errors" test_load_rejects_malformed;
      ] );
    ( "ledger.diff",
      [
        case "flips, regressions, shape-paired edits" test_diff_semantics;
        case "identical runs report zero drift" test_diff_identical_runs;
        case "per-fingerprint history trends" test_history;
      ] );
    ( "ledger.flow",
      [
        case "entries_of_result joins stats and fingerprints"
          test_entries_of_result;
        case "/runs snapshot provider payload" test_runs_snapshot;
        case "em_ledger_* metrics registered" test_metrics_registered;
      ] );
  ]
