open T_helpers
module V = Numerics.Vector
module D = Numerics.Dense
module Sp = Numerics.Sparse
module Cg = Numerics.Cg
module Tri = Numerics.Tridiag
module Rng = Numerics.Rng
module Stats = Numerics.Stats

(* ---------------------------------------------------------------- *)
(* Vector                                                            *)

let test_vector_basics () =
  let x = V.init 4 (fun i -> float_of_int (i + 1)) in
  let y = V.init 4 (fun i -> float_of_int (4 - i)) in
  check_close "dot" (4. +. 6. +. 6. +. 4.) (V.dot x y);
  check_close "norm2" (sqrt 30.) (V.norm2 x);
  check_close "norm_inf" 4. (V.norm_inf x);
  check_close "sum" 10. (V.sum x);
  check_array_close "add" [| 5.; 5.; 5.; 5. |] (V.add x y);
  check_array_close "sub" [| -3.; -1.; 1.; 3. |] (V.sub x y);
  check_array_close "scale" [| 2.; 4.; 6.; 8. |] (V.scale 2. x)

let test_vector_axpy () =
  let x = [| 1.; 2.; 3. |] in
  let y = [| 10.; 20.; 30. |] in
  V.axpy ~a:2. ~x ~y;
  check_array_close "axpy" [| 12.; 24.; 36. |] y;
  V.xpay ~x ~a:0.5 ~y;
  check_array_close "xpay" [| 7.; 14.; 21. |] y

let test_vector_dim_mismatch () =
  check_raises_invalid "dot mismatch" (fun () -> V.dot [| 1. |] [| 1.; 2. |]);
  check_raises_invalid "add mismatch" (fun () -> V.add [| 1. |] [| 1.; 2. |])

let test_vector_rel_diff () =
  let x = [| 1.0; 2.0 |] and y = [| 1.0; 2.0001 |] in
  check_close ~rtol:1e-6 "rel_diff" (0.0001 /. 2.0001) (V.rel_diff x y);
  Alcotest.(check bool) "approx_equal tight" false (V.approx_equal x y);
  Alcotest.(check bool) "approx_equal loose" true (V.approx_equal ~rtol:1e-3 x y)

let test_vector_empty () =
  check_close "norm_inf empty" 0. (V.norm_inf [||]);
  check_close "sum empty" 0. (V.sum [||])

(* ---------------------------------------------------------------- *)
(* Dense                                                             *)

let test_dense_solve_known () =
  (* 2x + y = 5; x + 3y = 10 -> x = 1, y = 3. *)
  let a = D.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = D.solve a [| 5.; 10. |] in
  check_array_close "2x2 solve" [| 1.; 3. |] x

let test_dense_solve_pivoting () =
  (* Leading zero forces a row swap. *)
  let a = D.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = D.solve a [| 2.; 3. |] in
  check_array_close "pivot solve" [| 3.; 2. |] x

let test_dense_singular () =
  let a = D.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  (match D.solve a [| 1.; 2. |] with
  | exception D.Singular -> ()
  | _ -> Alcotest.fail "expected Singular");
  check_close "det of singular" 0. (D.determinant a)

let test_dense_random_roundtrip () =
  let rng = Rng.create 42L in
  for trial = 0 to 9 do
    let n = 1 + Rng.int rng 8 in
    let a = D.create n n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        D.set a i j (Rng.uniform rng (-1.) 1.)
      done;
      (* Diagonal dominance guarantees invertibility. *)
      D.add_to a i i (float_of_int n *. 2.)
    done;
    let x_true = Array.init n (fun i -> Rng.uniform rng (-5.) 5. +. float_of_int i) in
    let b = D.mul_vec a x_true in
    let x = D.solve a b in
    check_array_close ~rtol:1e-8
      (Printf.sprintf "roundtrip %d (n=%d)" trial n)
      x_true x
  done

let test_dense_determinant () =
  let a = D.of_arrays [| [| 3.; 1. |]; [| 4.; 2. |] |] in
  check_close "det 2x2" 2. (D.determinant a);
  check_close "det identity" 1. (D.determinant (D.identity 5));
  (* A permutation matrix with one swap has determinant -1. *)
  let p = D.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_close "det swap" (-1.) (D.determinant p)

let test_dense_mul () =
  let a = D.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = D.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = D.mul a b in
  Alcotest.(check (list (list (float 1e-9))))
    "mul" [ [ 19.; 22. ]; [ 43.; 50. ] ]
    (Array.to_list (Array.map Array.to_list (D.to_arrays c)))

let test_dense_least_squares () =
  (* Fit y = 2x + 1 through three exact points: residual 0. *)
  let a = D.of_arrays [| [| 0.; 1. |]; [| 1.; 1. |]; [| 2.; 1. |] |] in
  let x = D.solve_least_squares a [| 1.; 3.; 5. |] in
  check_array_close ~rtol:1e-8 "ls fit" [| 2.; 1. |] x

(* ---------------------------------------------------------------- *)
(* Sparse                                                            *)

let test_sparse_builder_duplicates () =
  let b = Sp.Builder.create 2 2 in
  Sp.Builder.add b 0 0 1.;
  Sp.Builder.add b 0 0 2.;
  Sp.Builder.add b 1 0 5.;
  Sp.Builder.add b 0 1 (-1.);
  let m = Sp.Builder.to_csr b in
  check_close "dup sum" 3. (Sp.get m 0 0);
  check_close "other" 5. (Sp.get m 1 0);
  check_close "missing" 0. (Sp.get m 1 1);
  Alcotest.(check int) "nnz" 3 (Sp.nnz m)

let test_sparse_spmv_vs_dense () =
  let rng = Rng.create 7L in
  for _ = 0 to 9 do
    let n = 2 + Rng.int rng 12 and m = 2 + Rng.int rng 12 in
    let d = D.create n m in
    let b = Sp.Builder.create n m in
    for _ = 0 to (n * m / 3) + 1 do
      let i = Rng.int rng n and j = Rng.int rng m in
      let v = Rng.uniform rng (-2.) 2. in
      D.add_to d i j v;
      Sp.Builder.add b i j v
    done;
    let sp = Sp.Builder.to_csr b in
    let x = Array.init m (fun i -> float_of_int i -. 3.) in
    check_array_close ~rtol:1e-10 "spmv" (D.mul_vec d x) (Sp.mul_vec sp x)
  done

let test_sparse_transpose () =
  let b = Sp.Builder.create 2 3 in
  Sp.Builder.add b 0 2 4.;
  Sp.Builder.add b 1 0 7.;
  let m = Sp.Builder.to_csr b in
  let mt = Sp.transpose m in
  Alcotest.(check (pair int int)) "dims" (3, 2) (Sp.dims mt);
  check_close "t02" 4. (Sp.get mt 2 0);
  check_close "t10" 7. (Sp.get mt 0 1)

let test_sparse_symmetry () =
  let b = Sp.Builder.create 3 3 in
  Sp.Builder.add b 0 1 2.;
  Sp.Builder.add b 1 0 2.;
  Sp.Builder.add b 2 2 1.;
  Alcotest.(check bool) "symmetric" true (Sp.is_symmetric (Sp.Builder.to_csr b));
  Sp.Builder.add b 0 2 1.;
  Alcotest.(check bool) "asymmetric" false (Sp.is_symmetric (Sp.Builder.to_csr b))

let test_sparse_add_and_diag () =
  let b = Sp.Builder.create 2 2 in
  Sp.Builder.add b 0 1 1.;
  let m = Sp.Builder.to_csr b in
  let m2 = Sp.add m (Sp.identity 2) in
  check_close "sum diag" 1. (Sp.get m2 0 0);
  check_close "sum offdiag" 1. (Sp.get m2 0 1);
  let m3 = Sp.add_diagonal m [| 5.; 6. |] in
  check_array_close "add_diagonal" [| 5.; 6. |] (Sp.diagonal m3)

let test_sparse_empty_row () =
  let b = Sp.Builder.create 3 3 in
  Sp.Builder.add b 0 0 1.;
  Sp.Builder.add b 2 2 1.;
  let m = Sp.Builder.to_csr b in
  check_array_close "empty middle row" [| 1.; 0.; 1. |] (Sp.mul_vec m [| 1.; 1.; 1. |])

(* ---------------------------------------------------------------- *)
(* CG                                                                *)

let random_spd rng n =
  (* Diagonally dominant symmetric matrix. *)
  let b = Sp.Builder.create n n in
  let diag = Array.make n 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.float rng 1. < 0.3 then begin
        let v = Rng.uniform rng (-1.) 1. in
        Sp.Builder.add b i j v;
        Sp.Builder.add b j i v;
        diag.(i) <- diag.(i) +. Float.abs v;
        diag.(j) <- diag.(j) +. Float.abs v
      end
    done
  done;
  for i = 0 to n - 1 do
    Sp.Builder.add b i i (diag.(i) +. 1. +. Rng.float rng 2.)
  done;
  Sp.Builder.to_csr b

let test_cg_spd () =
  let rng = Rng.create 11L in
  for trial = 0 to 4 do
    let n = 5 + Rng.int rng 40 in
    let a = random_spd rng n in
    let x_true = Array.init n (fun i -> sin (float_of_int i)) in
    let b = Sp.mul_vec a x_true in
    let r = Cg.solve ~tol:1e-12 a b in
    Alcotest.(check bool) "converged" true r.Cg.converged;
    check_array_close ~rtol:1e-7 ~atol:1e-10
      (Printf.sprintf "cg %d" trial)
      x_true r.Cg.x
  done

let test_cg_no_precondition () =
  let rng = Rng.create 13L in
  let a = random_spd rng 20 in
  let x_true = Array.init 20 (fun i -> float_of_int (i mod 3)) in
  let b = Sp.mul_vec a x_true in
  let r = Cg.solve ~precondition:false ~tol:1e-12 a b in
  check_array_close ~rtol:1e-7 ~atol:1e-10 "cg plain" x_true r.Cg.x

let test_cg_zero_rhs () =
  let rng = Rng.create 17L in
  let a = random_spd rng 10 in
  let r = Cg.solve a (Array.make 10 0.) in
  check_array_close "zero rhs" (Array.make 10 0.) r.Cg.x

let path_laplacian n =
  let b = Sp.Builder.create n n in
  for i = 0 to n - 2 do
    Sp.Builder.add b i i 1.;
    Sp.Builder.add b (i + 1) (i + 1) 1.;
    Sp.Builder.add b i (i + 1) (-1.);
    Sp.Builder.add b (i + 1) i (-1.)
  done;
  Sp.Builder.to_csr b

let test_cg_semidefinite_path () =
  (* Pure-Neumann Poisson on a path: inject +1 at one end, -1 at the
     other; the solution is linear in the node index. *)
  let n = 12 in
  let l = path_laplacian n in
  let b = Array.make n 0. in
  b.(0) <- 1.;
  b.(n - 1) <- -1.;
  let r = Cg.solve_semidefinite ~tol:1e-13 l b in
  (* x_i = c - i for some c fixed by the zero-mean gauge. *)
  let expected =
    let c = float_of_int (n - 1) /. 2. in
    Array.init n (fun i -> c -. float_of_int i)
  in
  check_array_close ~rtol:1e-8 ~atol:1e-9 "neumann path" expected r.Cg.x;
  check_close ~atol:1e-9 "zero mean" 0. (V.sum r.Cg.x)

let test_cg_semidefinite_weighted_gauge () =
  let n = 6 in
  let l = path_laplacian n in
  let b = Array.make n 0. in
  b.(0) <- 2.;
  b.(n - 1) <- -2.;
  let weights = Array.init n (fun i -> float_of_int (i + 1)) in
  let r = Cg.solve_semidefinite ~tol:1e-13 ~weights l b in
  check_close ~atol:1e-8 "weighted gauge" 0. (V.dot weights r.Cg.x);
  (* Gradient along the path must still be -2 per edge... per unit
     conductance 1 and current 2. *)
  for i = 0 to n - 2 do
    check_close ~rtol:1e-7 ~atol:1e-8 "gradient" 2. (r.Cg.x.(i) -. r.Cg.x.(i + 1))
  done

(* ---------------------------------------------------------------- *)
(* Tridiag                                                           *)

let test_tridiag_vs_dense () =
  let rng = Rng.create 23L in
  for _ = 0 to 4 do
    let n = 2 + Rng.int rng 20 in
    let t = Tri.create n in
    for i = 0 to n - 1 do
      t.Tri.diag.(i) <- 4. +. Rng.float rng 2.;
      if i < n - 1 then begin
        t.Tri.upper.(i) <- Rng.uniform rng (-1.) 1.;
        t.Tri.lower.(i) <- Rng.uniform rng (-1.) 1.
      end
    done;
    let x_true = Array.init n (fun i -> cos (float_of_int i)) in
    let b = Tri.mul_vec t x_true in
    check_array_close ~rtol:1e-9 "thomas" x_true (Tri.solve t b);
    (* Cross-check against the sparse representation. *)
    check_array_close ~rtol:1e-10 "to_sparse"
      (Sp.mul_vec (Tri.to_sparse t) x_true)
      b
  done

let test_tridiag_single () =
  let t = Tri.create 1 in
  t.Tri.diag.(0) <- 2.;
  check_array_close "1x1" [| 3. |] (Tri.solve t [| 6. |])

(* ---------------------------------------------------------------- *)
(* Stats                                                             *)

let test_stats_basics () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_close "mean" 5. (Stats.mean xs);
  (* Sample stddev: sum of squares 32 over n - 1 = 7 (Bessel). *)
  check_close "stddev" (sqrt (32. /. 7.)) (Stats.stddev xs);
  let lo, hi = Stats.min_max xs in
  check_close "min" 2. lo;
  check_close "max" 9. hi

(* Regression pin for the Bessel correction: variance/stddev report
   sample statistics, not the population formula that biased small-n
   spreads low. *)
let test_stats_variance_bessel () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_close "variance" (5. /. 3.) (Stats.variance xs);
  check_close "stddev" (sqrt (5. /. 3.)) (Stats.stddev xs);
  check_close "single observation" 0. (Stats.variance [| 42. |]);
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Stats.variance [||]))

let test_stats_online_welford () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  let o = Stats.Online.create () in
  Array.iter (Stats.Online.add o) xs;
  Alcotest.(check int) "count" 8 (Stats.Online.count o);
  check_close "mean matches batch" (Stats.mean xs) (Stats.Online.mean o);
  check_close "variance matches batch" (Stats.variance xs)
    (Stats.Online.variance o);
  check_close "stddev matches batch" (Stats.stddev xs) (Stats.Online.stddev o);
  let empty = Stats.Online.create () in
  Alcotest.(check bool) "empty mean nan" true
    (Float.is_nan (Stats.Online.mean empty));
  Alcotest.(check bool) "empty variance nan" true
    (Float.is_nan (Stats.Online.variance empty));
  Stats.Online.add empty 3.;
  check_close "single mean" 3. (Stats.Online.mean empty);
  check_close "single variance" 0. (Stats.Online.variance empty)

let test_stats_p2_small_exact () =
  (* Up to five observations the streaming estimator must agree with the
     exact interpolated order statistic, in any arrival order. *)
  let xs = [| 9.; 1.; 5.; 3.; 7. |] in
  List.iter
    (fun p ->
      let est = Stats.P2.create (p /. 100.) in
      Alcotest.(check bool) "empty is nan" true
        (Float.is_nan (Stats.P2.quantile est));
      Array.iteri
        (fun i x ->
          Stats.P2.add est x;
          let prefix = Array.sub xs 0 (i + 1) in
          check_close
            (Printf.sprintf "p%.0f after %d obs" p (i + 1))
            (Stats.percentile prefix p)
            (Stats.P2.quantile est))
        xs)
    [ 10.; 50.; 90.; 99. ]

let test_stats_p2_large_approximates () =
  let rng = Rng.create 7L in
  let n = 1000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng ~mean:0. ~stddev:1.) in
  List.iter
    (fun p ->
      let est = Stats.P2.create (p /. 100.) in
      Array.iter (Stats.P2.add est) xs;
      Alcotest.(check int) "count" n (Stats.P2.count est);
      let exact = Stats.percentile xs p in
      let err = Float.abs (Stats.P2.quantile est -. exact) in
      if err > 0.15 then
        Alcotest.failf "P2 p%.0f off by %.3f (est %.3f, exact %.3f)" p err
          (Stats.P2.quantile est) exact)
    [ 50.; 90.; 99. ];
  check_raises_invalid "p out of range" (fun () -> ignore (Stats.P2.create 0.));
  check_raises_invalid "p out of range" (fun () -> ignore (Stats.P2.create 1.))

let test_stats_percentile () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_close "p0" 1. (Stats.percentile xs 0.);
  check_close "p100" 4. (Stats.percentile xs 100.);
  check_close "median" 2.5 (Stats.median xs);
  check_close "p25" 1.75 (Stats.percentile xs 25.)

let test_stats_errors () =
  check_raises_invalid "empty percentile" (fun () -> Stats.percentile [||] 50.);
  check_raises_invalid "bad p" (fun () -> Stats.percentile [| 1. |] 101.)

(* The sort inside percentile uses Float.compare (total order: nan
   first), not polymorphic compare — pin the observable behavior. *)
let test_stats_percentile_float_compare () =
  let xs = [| 3.; Float.nan; 1. |] in
  Alcotest.(check bool) "nan sorts first" true
    (Float.is_nan (Stats.percentile xs 0.));
  check_close "max ignores leading nan" 3. (Stats.percentile xs 100.);
  check_close "negative zero orders before positive" (-0.)
    (Stats.percentile [| 0.; -0. |] 0.)

let test_stats_histogram () =
  let xs = [| 0.1; 0.2; 0.6; 2.5; -1. |] in
  let h = Stats.histogram xs ~bins:2 ~lo:0. ~hi:1. in
  (* -1 clamps into bin 0; 2.5 clamps into bin 1. *)
  Alcotest.(check (list int)) "hist" [ 3; 2 ] (Array.to_list h)

let test_stats_errors_metrics () =
  check_close "rmse" 1. (Stats.rmse [| 1.; 2. |] [| 2.; 1. |]);
  check_close "rmse scaled" (sqrt 2.5) (Stats.rmse [| 0.; 0. |] [| 1.; 2. |]);
  check_close "max_rel_error" 0.5 (Stats.max_rel_error [| 1.; 3. |] [| 2.; 3. |])

(* ---------------------------------------------------------------- *)
(* Rng                                                               *)

let test_rng_determinism () =
  let a = Rng.create 99L and b = Rng.create 99L in
  for _ = 0 to 99 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_ranges () =
  let rng = Rng.create 1L in
  for _ = 0 to 999 do
    let f = Rng.float rng 3. in
    Alcotest.(check bool) "float range" true (f >= 0. && f < 3.);
    let i = Rng.int rng 7 in
    Alcotest.(check bool) "int range" true (i >= 0 && i < 7);
    let u = Rng.uniform rng (-2.) 5. in
    Alcotest.(check bool) "uniform range" true (u >= -2. && u < 5.)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 5L in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng ~mean:3. ~stddev:2.) in
  check_close ~rtol:0.05 "gauss mean" 3. (Stats.mean xs);
  check_close ~rtol:0.05 "gauss stddev" 2. (Stats.stddev xs)

let test_rng_gaussian_positive () =
  let rng = Rng.create 6L in
  (* Heavy truncation (mean 1, sigma 2 rejects ~31% of draws): every
     result is still strictly positive. *)
  for _ = 1 to 5000 do
    Alcotest.(check bool) "strictly positive" true
      (Rng.gaussian_positive rng ~mean:1. ~stddev:2. > 0.)
  done;
  (* Mild truncation: the rejection sampler keeps the mean (a hard clamp
     would shift it up). *)
  let n = 20000 in
  let xs =
    Array.init n (fun _ -> Rng.gaussian_positive rng ~mean:1. ~stddev:0.25)
  in
  check_close ~rtol:0.01 "mean preserved" 1. (Stats.mean xs);
  check_raises_invalid "non-positive mean" (fun () ->
      ignore (Rng.gaussian_positive rng ~mean:0. ~stddev:1.))

let test_rng_shuffle_permutes () =
  let rng = Rng.create 31L in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_split_independent () =
  let parent = Rng.create 77L in
  let child = Rng.split parent in
  (* The child stream must differ from the parent's continuation. *)
  let same = ref true in
  for _ = 0 to 9 do
    if Rng.int64 parent <> Rng.int64 child then same := false
  done;
  Alcotest.(check bool) "independent streams" false !same


(* ---------------------------------------------------------------- *)
(* Cholesky                                                          *)

module Ch = Numerics.Cholesky

let test_cholesky_small_known () =
  (* [[4,1],[1,3]]: x = A \ b checked against the dense solver. *)
  let b = Sp.Builder.create 2 2 in
  Sp.Builder.add b 0 0 4.;
  Sp.Builder.add b 0 1 1.;
  Sp.Builder.add b 1 0 1.;
  Sp.Builder.add b 1 1 3.;
  let a = Sp.Builder.to_csr b in
  let f = Ch.factorize a in
  let x = Ch.solve f [| 1.; 2. |] in
  let expected = D.solve (Sp.to_dense a) [| 1.; 2. |] in
  check_array_close ~rtol:1e-12 "2x2" expected x

let test_cholesky_random_spd () =
  let rng = Rng.create 61L in
  List.iter
    (fun ordering ->
      for trial = 0 to 4 do
        let n = 5 + Rng.int rng 40 in
        let a = random_spd rng n in
        let f = Ch.factorize ~ordering a in
        let x_true = Array.init n (fun i -> sin (float_of_int (i * 7))) in
        let b = Sp.mul_vec a x_true in
        check_array_close ~rtol:1e-9 ~atol:1e-12
          (Printf.sprintf "trial %d (n=%d)" trial n)
          x_true (Ch.solve f b);
        (* The factorization is reusable across right-hand sides. *)
        let b2 = Sp.mul_vec a (Array.make n 1.) in
        check_array_close ~rtol:1e-9 ~atol:1e-12 "second rhs" (Array.make n 1.)
          (Ch.solve f b2)
      done)
    [ Ch.Natural; Ch.Rcm ]

let test_cholesky_vs_cg () =
  let rng = Rng.create 67L in
  let a = random_spd rng 60 in
  let b = Array.init 60 (fun i -> cos (float_of_int i)) in
  let direct = Ch.solve (Ch.factorize a) b in
  let iterative = (Cg.solve ~tol:1e-13 a b).Cg.x in
  check_array_close ~rtol:1e-8 ~atol:1e-11 "direct vs CG" iterative direct

let test_cholesky_not_spd () =
  (* A singular Laplacian has a zero pivot at the end. *)
  let l = path_laplacian 5 in
  (match Ch.factorize l with
  | exception Ch.Not_positive_definite _ -> ()
  | _ -> Alcotest.fail "singular Laplacian must be rejected");
  (* An indefinite matrix fails too. *)
  let b = Sp.Builder.create 2 2 in
  Sp.Builder.add b 0 0 1.;
  Sp.Builder.add b 1 1 (-1.);
  match Ch.factorize (Sp.Builder.to_csr b) with
  | exception Ch.Not_positive_definite 1 -> ()
  | exception Ch.Not_positive_definite _ -> ()
  | _ -> Alcotest.fail "indefinite matrix must be rejected"

let test_cholesky_grounded_laplacian () =
  (* Pinning one node of a Laplacian (the MNA reduction) makes it SPD:
     the canonical power-grid use. *)
  let n = 40 in
  let l = path_laplacian n in
  let grounded = Sp.add_diagonal l (Array.init n (fun i -> if i = 0 then 1. else 0.)) in
  let f = Ch.factorize grounded in
  let x_true = Array.init n (fun i -> float_of_int i /. 10.) in
  let b = Sp.mul_vec grounded x_true in
  check_array_close ~rtol:1e-9 ~atol:1e-10 "grounded path" x_true (Ch.solve f b);
  Alcotest.(check bool) "fill bounded on a path" true
    (Ch.nnz_l f <= 2 * n)

let test_cholesky_rcm_reduces_fill () =
  (* A 2-D grid Laplacian (+I): RCM should not increase fill vs a
     scrambled natural order. *)
  let rows = 12 and cols = 12 in
  let n = rows * cols in
  let rng = Rng.create 71L in
  let scramble = Array.init n (fun i -> i) in
  Rng.shuffle rng scramble;
  let b = Sp.Builder.create n n in
  let idx r c = scramble.((r * cols) + c) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Sp.Builder.add b (idx r c) (idx r c) 5.;
      let couple r2 c2 =
        if r2 >= 0 && r2 < rows && c2 >= 0 && c2 < cols then begin
          Sp.Builder.add b (idx r c) (idx r2 c2) (-1.)
        end
      in
      couple (r - 1) c;
      couple (r + 1) c;
      couple r (c - 1);
      couple r (c + 1)
    done
  done;
  let a = Sp.Builder.to_csr b in
  let natural = Ch.factorize ~ordering:Ch.Natural a in
  let rcm = Ch.factorize ~ordering:Ch.Rcm a in
  Alcotest.(check bool)
    (Printf.sprintf "fill: rcm %d vs natural %d" (Ch.nnz_l rcm)
       (Ch.nnz_l natural))
    true
    (Ch.nnz_l rcm <= Ch.nnz_l natural);
  (* And both solve correctly. *)
  let x_true = Array.init n (fun i -> float_of_int (i mod 7)) in
  let rhs = Sp.mul_vec a x_true in
  check_array_close ~rtol:1e-9 ~atol:1e-10 "scrambled grid" x_true
    (Ch.solve rcm rhs)

let test_cholesky_permutation_is_permutation () =
  let rng = Rng.create 73L in
  let a = random_spd rng 30 in
  let f = Ch.factorize a in
  let p = Ch.ordering_permutation f in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 30 (fun i -> i)) sorted;
  Alcotest.(check int) "dim" 30 (Ch.dim f)


(* ---------------------------------------------------------------- *)
(* Parallel                                                          *)

module Par = Numerics.Parallel

let test_parallel_matches_sequential () =
  let xs = Array.init 1000 (fun i -> i) in
  let f i = float_of_int (i * i) +. sin (float_of_int i) in
  let seq = Array.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (array (float 1e-12)))
        (Printf.sprintf "jobs=%d" jobs)
        seq (Par.map ~jobs f xs))
    [ 1; 2; 3; 7 ]

let test_parallel_edge_cases () =
  Alcotest.(check (array int)) "empty" [||] (Par.map ~jobs:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "fewer items than jobs" [| 2; 4 |]
    (Par.map ~jobs:8 (fun x -> 2 * x) [| 1; 2 |]);
  check_raises_invalid "jobs < 1" (fun () ->
      ignore (Par.map ~jobs:0 (fun x -> x) [| 1 |]));
  Alcotest.(check bool) "recommended >= 1" true (Par.recommended_jobs () >= 1)

let test_parallel_exception_propagates () =
  match
    Par.map ~jobs:4 (fun i -> if i = 37 then failwith "boom" else i)
      (Array.init 100 (fun i -> i))
  with
  | exception Failure m -> Alcotest.(check string) "original exn" "boom" m
  | _ -> Alcotest.fail "expected failure"

let test_parallel_list () =
  Alcotest.(check (list int)) "map_list" [ 2; 3; 4 ]
    (Par.map_list ~jobs:2 (fun x -> x + 1) [ 1; 2; 3 ])

let test_parallel_map_result_slots () =
  (* One poisoned item per decade: every healthy slot still computes,
     every poisoned slot carries its own exception. *)
  let slots =
    Par.map_result ~jobs:4
      (fun i -> if i mod 10 = 3 then failwith (Printf.sprintf "bad %d" i) else 2 * i)
      (Array.init 50 (fun i -> i))
  in
  Alcotest.(check int) "failed slots" 5 (Par.failures slots);
  Array.iteri
    (fun i slot ->
      match slot with
      | Ok v ->
        Alcotest.(check bool) "healthy index" true (i mod 10 <> 3);
        Alcotest.(check int) "value" (2 * i) v
      | Error (Failure m, _) ->
        Alcotest.(check bool) "poisoned index" true (i mod 10 = 3);
        Alcotest.(check string) "message" (Printf.sprintf "bad %d" i) m
      | Error (e, _) ->
        Alcotest.failf "unexpected exception %s" (Printexc.to_string e))
    slots

let test_parallel_map_local_result () =
  (* Worker state survives a poisoned item: items after the failure in
     the same chunk still see the domain-local state. *)
  let slots =
    Par.map_local_result ~jobs:2
      ~local:(fun () -> ref 0)
      (fun acc i ->
        incr acc;
        if i = 5 then failwith "boom";
        i + !acc)
      (Array.init 12 (fun i -> i))
  in
  Alcotest.(check int) "one failure" 1 (Par.failures slots);
  (match slots.(5) with
  | Error (Failure m, _) when m = "boom" -> ()
  | _ -> Alcotest.fail "slot 5 must carry its failure");
  (* jobs=2 on 12 items: chunks are [0..5] and [6..11]; every non-failed
     slot i gets i + (its 1-based position in its chunk). *)
  Array.iteri
    (fun i slot ->
      if i <> 5 then
        match slot with
        | Ok v ->
          let pos = if i < 6 then i + 1 else i - 6 + 1 in
          Alcotest.(check int) (Printf.sprintf "slot %d" i) (i + pos) v
        | Error _ -> Alcotest.failf "slot %d unexpectedly failed" i)
    slots

let test_parallel_first_error_deterministic () =
  (* Multiple failing slots across different domains: map re-raises the
     lowest-indexed one, not whichever worker lost the race. *)
  for _ = 1 to 5 do
    match
      Par.map ~jobs:4
        (fun i ->
          if i = 11 || i = 40 || i = 77 then
            failwith (Printf.sprintf "fail %d" i)
          else i)
        (Array.init 100 (fun i -> i))
    with
    | exception Failure m -> Alcotest.(check string) "lowest index" "fail 11" m
    | _ -> Alcotest.fail "expected failure"
  done

let test_parallel_backtrace_preserved () =
  (* raise_with_backtrace hands the caller the original raise point. *)
  Printexc.record_backtrace true;
  let deep_raise i =
    if i = 3 then raise Not_found else i
  in
  match Par.map ~jobs:2 deep_raise (Array.init 8 (fun i -> i)) with
  | exception Not_found -> () (* identity of the exception preserved *)
  | _ -> Alcotest.fail "expected Not_found"

let suites =
  [
    ( "numerics.vector",
      [
        case "basics" test_vector_basics;
        case "axpy/xpay" test_vector_axpy;
        case "dimension mismatch" test_vector_dim_mismatch;
        case "rel_diff / approx_equal" test_vector_rel_diff;
        case "empty vectors" test_vector_empty;
      ] );
    ( "numerics.dense",
      [
        case "2x2 solve" test_dense_solve_known;
        case "pivoting" test_dense_solve_pivoting;
        case "singular detection" test_dense_singular;
        case "random roundtrips" test_dense_random_roundtrip;
        case "determinant" test_dense_determinant;
        case "matrix product" test_dense_mul;
        case "least squares" test_dense_least_squares;
      ] );
    ( "numerics.sparse",
      [
        case "builder duplicate summing" test_sparse_builder_duplicates;
        case "spmv matches dense" test_sparse_spmv_vs_dense;
        case "transpose" test_sparse_transpose;
        case "symmetry detection" test_sparse_symmetry;
        case "add / add_diagonal" test_sparse_add_and_diag;
        case "empty rows" test_sparse_empty_row;
      ] );
    ( "numerics.cg",
      [
        case "SPD systems" test_cg_spd;
        case "unpreconditioned" test_cg_no_precondition;
        case "zero rhs" test_cg_zero_rhs;
        case "semidefinite path Laplacian" test_cg_semidefinite_path;
        case "weighted gauge" test_cg_semidefinite_weighted_gauge;
      ] );
    ( "numerics.cholesky",
      [
        case "2x2 known" test_cholesky_small_known;
        case "random SPD, both orderings" test_cholesky_random_spd;
        case "agrees with CG" test_cholesky_vs_cg;
        case "rejects non-SPD" test_cholesky_not_spd;
        case "grounded Laplacian" test_cholesky_grounded_laplacian;
        case "RCM fill on scrambled grid" test_cholesky_rcm_reduces_fill;
        case "ordering is a permutation" test_cholesky_permutation_is_permutation;
      ] );
    ( "numerics.tridiag",
      [
        case "Thomas vs dense" test_tridiag_vs_dense;
        case "1x1" test_tridiag_single;
      ] );
    ( "numerics.stats",
      [
        case "mean/stddev/minmax" test_stats_basics;
        case "Bessel-corrected variance" test_stats_variance_bessel;
        case "Welford online moments" test_stats_online_welford;
        case "P2 exact on small counts" test_stats_p2_small_exact;
        case "P2 approximates large counts" test_stats_p2_large_approximates;
        case "percentiles" test_stats_percentile;
        case "percentile Float.compare order" test_stats_percentile_float_compare;
        case "error handling" test_stats_errors;
        case "histogram clamping" test_stats_histogram;
        case "rmse / max_rel_error" test_stats_errors_metrics;
      ] );
    ( "numerics.parallel",
      [
        case "matches sequential" test_parallel_matches_sequential;
        case "edge cases" test_parallel_edge_cases;
        case "exception propagation" test_parallel_exception_propagates;
        case "map_list" test_parallel_list;
        case "map_result per-slot capture" test_parallel_map_result_slots;
        case "map_local_result keeps state" test_parallel_map_local_result;
        case "first error deterministic" test_parallel_first_error_deterministic;
        case "exception identity preserved" test_parallel_backtrace_preserved;
      ] );
    ( "numerics.rng",
      [
        case "determinism" test_rng_determinism;
        case "ranges" test_rng_ranges;
        case "gaussian moments" test_rng_gaussian_moments;
        case "zero-truncated gaussian" test_rng_gaussian_positive;
        case "shuffle permutes" test_rng_shuffle_permutes;
        case "split independence" test_rng_split_independent;
      ] );
  ]
