open T_helpers
module Tr = Obs.Trace
module Mx = Obs.Metrics
module Gg = Pdn.Grid_gen
module Ex = Emflow.Extract
module Flow = Emflow.Em_flow

(* ---------------------------------------------------------------- *)
(* Trace: spans                                                      *)

let test_span_disabled_noop () =
  Alcotest.(check bool) "tracing off by default" false (Tr.enabled ());
  Alcotest.(check int) "with_span is the identity" 42
    (Tr.with_span "x" (fun () -> 42));
  (* An exception still propagates untouched. *)
  match Tr.with_span "x" (fun () -> failwith "boom") with
  | () -> Alcotest.fail "expected raise"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m

let find_span evs name =
  match List.find_opt (fun (e : Tr.event) -> e.Tr.name = name) evs with
  | Some e -> e
  | None -> Alcotest.failf "span %s not recorded" name

let test_span_nesting () =
  let t = Tr.create () in
  let result =
    Tr.with_enabled t (fun () ->
        Tr.with_span "outer" (fun () ->
            Tr.with_span "first" (fun () -> ());
            Tr.with_span "second" (fun () -> 7)))
  in
  Alcotest.(check int) "result passes through" 7 result;
  Alcotest.(check bool) "sink uninstalled afterwards" false (Tr.enabled ());
  let evs = Tr.events t in
  Alcotest.(check int) "three spans" 3 (List.length evs);
  let outer = find_span evs "outer" in
  let first = find_span evs "first" in
  let second = find_span evs "second" in
  Alcotest.(check bool) "outer is a root" true (outer.Tr.parent = None);
  Alcotest.(check bool) "first nested under outer" true
    (first.Tr.parent = Some outer.Tr.id);
  Alcotest.(check bool) "second nested under outer, not first" true
    (second.Tr.parent = Some outer.Tr.id);
  (* Same domain throughout. *)
  List.iter
    (fun (e : Tr.event) ->
      Alcotest.(check int) "one track" outer.Tr.track e.Tr.track)
    evs;
  (* Temporal containment and ordering (the clock is monotonic, so the
     inequalities are exact, not approximate). *)
  let ends (e : Tr.event) = e.Tr.start_us +. e.Tr.dur_us in
  Alcotest.(check bool) "children start after outer" true
    (first.Tr.start_us >= outer.Tr.start_us
    && second.Tr.start_us >= outer.Tr.start_us);
  Alcotest.(check bool) "children end before outer" true
    (ends first <= ends outer && ends second <= ends outer);
  Alcotest.(check bool) "siblings ordered" true
    (second.Tr.start_us >= ends first);
  (* [events] sorts by start time: outer comes first. *)
  match evs with
  | e :: _ -> Alcotest.(check string) "outer sorted first" "outer" e.Tr.name
  | [] -> assert false

let test_span_error_flag () =
  let t = Tr.create () in
  (match
     Tr.with_enabled t (fun () ->
         Tr.with_span "outer" (fun () ->
             Tr.with_span "boom" (fun () -> failwith "kaput")))
   with
  | () -> Alcotest.fail "expected raise"
  | exception Failure _ -> ());
  let evs = Tr.events t in
  Alcotest.(check int) "both spans recorded" 2 (List.length evs);
  Alcotest.(check bool) "inner flagged" true (find_span evs "boom").Tr.error;
  (* The outer span did not catch, so it raised too. *)
  Alcotest.(check bool) "outer flagged" true (find_span evs "outer").Tr.error;
  let aggs = Tr.aggregate t in
  let boom = List.find (fun (a : Tr.agg) -> a.Tr.agg_name = "boom") aggs in
  Alcotest.(check int) "aggregate counts the error" 1 boom.Tr.errors

let test_parallel_tracks () =
  let t = Tr.create () in
  let doubled =
    Tr.with_enabled t (fun () ->
        Numerics.Parallel.map ~jobs:4 (fun x -> 2 * x) (Array.init 16 Fun.id))
  in
  Alcotest.(check bool) "map result intact" true
    (Array.for_all2 ( = ) doubled (Array.init 16 (fun i -> 2 * i)));
  let chunks =
    List.filter (fun (e : Tr.event) -> e.Tr.name = "parallel.chunk") (Tr.events t)
  in
  Alcotest.(check int) "one chunk span per worker" 4 (List.length chunks);
  let tracks =
    List.sort_uniq compare (List.map (fun (e : Tr.event) -> e.Tr.track) chunks)
  in
  Alcotest.(check int) "workers on distinct tracks" 4 (List.length tracks);
  let names = List.map snd (Tr.track_names t) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " track named") true (List.mem n names))
    [ "main"; "worker-1"; "worker-2"; "worker-3" ]

(* ---------------------------------------------------------------- *)
(* Trace: Chrome export                                              *)

(* Minimal JSON acceptor — syntax validation only, enough to catch a
   malformed exporter (bad escaping, trailing commas, bare NaN) without
   an external parser dependency. *)
let json_accepts s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    match peek () with
    | Some c ->
      incr pos;
      c
    | None -> raise Exit
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let expect c = if next () <> c then raise Exit in
  let literal lit = String.iter expect lit in
  let is_hex = function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false in
  let string_lit () =
    expect '"';
    let rec go () =
      match next () with
      | '"' -> ()
      | '\\' -> begin
        match next () with
        | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> go ()
        | 'u' ->
          for _ = 1 to 4 do
            if not (is_hex (next ())) then raise Exit
          done;
          go ()
        | _ -> raise Exit
      end
      | c when Char.code c < 0x20 -> raise Exit
      | _ -> go ()
    in
    go ()
  in
  let number () =
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          incr pos;
          saw := true;
          go ()
        | _ -> ()
      in
      go ();
      if not !saw then raise Exit
    in
    if peek () = Some '-' then incr pos;
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> raise Exit
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match next () with
        | ',' -> members ()
        | '}' -> ()
        | _ -> raise Exit
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else
      let rec elements () =
        value ();
        skip_ws ();
        match next () with
        | ',' -> elements ()
        | ']' -> ()
        | _ -> raise Exit
      in
      elements ()
  in
  match
    value ();
    skip_ws ()
  with
  | () -> !pos = n
  | exception Exit -> false

let contains hay needle =
  let n = String.length needle in
  let found = ref false in
  for i = 0 to String.length hay - n do
    if String.sub hay i n = needle then found := true
  done;
  !found

let test_json_acceptor_sanity () =
  List.iter
    (fun s -> Alcotest.(check bool) ("accepts " ^ s) true (json_accepts s))
    [
      "{}"; "[]"; {|{"a":[1,-2.5e3,true,null,"x\né"]}|}; "3"; {|"s"|};
    ];
  List.iter
    (fun s -> Alcotest.(check bool) ("rejects " ^ s) false (json_accepts s))
    [ ""; "{"; "[1,]"; {|{"a":}|}; "NaN"; "[1] trailing"; {|{"a" 1}|} ]

let test_chrome_export () =
  let t = Tr.create () in
  (match
     Tr.with_enabled t (fun () ->
         Tr.with_span
           ~attrs:
             [
               ("structure", Tr.Int 3);
               ("note", Tr.String "quote\" backslash\\ newline\n");
               ("ratio", Tr.Float 0.5);
               ("ok", Tr.Bool true);
             ]
           "outer"
           (fun () -> Tr.with_span "inner" (fun () -> failwith "x")))
   with
  | () -> Alcotest.fail "expected raise"
  | exception Failure _ -> ());
  let json = Tr.to_chrome_json t in
  Alcotest.(check bool) "well-formed JSON" true (json_accepts json);
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains json needle))
    [
      {|"traceEvents"|}; {|"displayTimeUnit"|}; {|"ph":"X"|}; {|"ph":"M"|};
      {|"name":"outer"|}; {|"name":"inner"|}; {|"structure":3|};
      {|"error":true|}; "quote\\\" backslash\\\\ newline\\n";
    ]

let test_chrome_export_hostile_names () =
  (* Span and attribute names under attack: multibyte unicode, control
     characters, quotes/backslashes, and invalid UTF-8 (lone
     continuation byte, truncated sequence, 0xFF). The export must stay
     syntactically valid JSON with invalid bytes replaced by U+FFFD. *)
  let t = Tr.create () in
  Tr.with_enabled t (fun () ->
      Tr.with_span "λ→∞ 界" (fun () -> ());
      Tr.with_span "ctrl\x01\x1ftab\tquote\"back\\" (fun () -> ());
      Tr.with_span "bad\x80utf\xe2\x82trunc\xff"
        ~attrs:
          [ ("key \"q\" \x9f", Tr.String "va\xc0lue\n"); ("μ", Tr.Int 1) ]
        (fun () -> ()));
  let json = Tr.to_chrome_json t in
  Alcotest.(check bool) "hostile export is well-formed JSON" true
    (json_accepts json);
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        ("contains " ^ String.escaped needle)
        true (contains json needle))
    [
      (* Valid multibyte sequences survive untouched... *)
      "λ→∞ 界"; "μ";
      (* ...control characters become \u escapes... *)
      {|ctrl\u0001\u001ftab\tquote\"back\\|};
      (* ...and each invalid byte is replaced by U+FFFD. *)
      (* The truncated 3-byte sequence \xe2\x82 yields one replacement
         per invalid byte. *)
      "bad\xef\xbf\xbdutf\xef\xbf\xbd\xef\xbf\xbdtrunc\xef\xbf\xbd";
      "va\xef\xbf\xbdlue\\n";
    ];
  (* No raw invalid byte leaks through. *)
  Alcotest.(check bool) "no raw 0xFF" false (String.contains json '\xff')

(* ---------------------------------------------------------------- *)
(* Log                                                               *)

module Lg = Obs.Log
module Fl = Obs.Flight

let test_log_disabled_noop () =
  Lg.disable ();
  Fl.set_enabled false;
  Alcotest.(check bool) "no sink installed" false (Lg.enabled ());
  let ran = ref false in
  Lg.info (fun () ->
      ran := true;
      ("should not run", []));
  Alcotest.(check bool) "thunk never runs when all off" false !ran

let log_lines buf =
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> String.trim l <> "")

let test_log_level_filter () =
  Fl.set_enabled false;
  let buf = Buffer.create 256 in
  let sink = Lg.create ~min_level:Lg.Warn ~text:(Lg.Buffer buf) () in
  Lg.with_enabled sink (fun () ->
      Lg.debug (fun () -> ("too quiet", []));
      Lg.info (fun () -> ("still too quiet", []));
      Lg.warn (fun () -> ("loud enough", [ ("k", Tr.String "v") ]));
      Lg.error (fun () -> ("very loud", [ ("n", Tr.Int 3) ])));
  Alcotest.(check bool) "sink uninstalled afterwards" false (Lg.enabled ());
  match log_lines buf with
  | [ w; e ] ->
    Alcotest.(check bool) "warn line has level" true (contains w "WARN");
    Alcotest.(check bool) "warn line has message" true
      (contains w "loud enough");
    Alcotest.(check bool) "warn line has field" true (contains w "k=v");
    Alcotest.(check bool) "error line has level" true (contains e "ERROR");
    Alcotest.(check bool) "error line has field" true (contains e "n=3")
  | ls -> Alcotest.failf "expected 2 lines above Warn, got %d" (List.length ls)

let test_log_json_sink () =
  Fl.set_enabled false;
  let buf = Buffer.create 256 in
  let sink = Lg.create ~min_level:Lg.Debug ~json:(Lg.Buffer buf) () in
  Lg.with_enabled sink (fun () ->
      Lg.info (fun () ->
          ( "json record",
            [
              ("f", Tr.Float 0.5); ("b", Tr.Bool true);
              ("s", Tr.String "quote\" \xffbad");
            ] )));
  match log_lines buf with
  | [ line ] ->
    Alcotest.(check bool) "line is valid JSON" true (json_accepts line);
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          ("contains " ^ String.escaped needle)
          true (contains line needle))
      [
        {|"level":"info"|}; {|"msg":"json record"|}; {|"f":0.5|}; {|"b":true|};
        (* Hostile bytes in a field value sanitize, stay valid JSON. *)
        "quote\\\" \xef\xbf\xbdbad";
      ]
  | ls -> Alcotest.failf "expected 1 JSON line, got %d" (List.length ls)

let test_log_span_correlation () =
  Fl.set_enabled false;
  let buf = Buffer.create 256 in
  let jbuf = Buffer.create 256 in
  let sink = Lg.create ~text:(Lg.Buffer buf) ~json:(Lg.Buffer jbuf) () in
  let t = Tr.create () in
  Tr.with_enabled t (fun () ->
      Lg.with_enabled sink (fun () ->
          Tr.with_span "enclosing" (fun () ->
              Lg.info (fun () -> ("from inside", [])));
          Lg.info (fun () -> ("from outside", []))));
  let span_id =
    match Tr.events t with
    | [ e ] -> e.Tr.id
    | es -> Alcotest.failf "expected 1 span, got %d" (List.length es)
  in
  (match log_lines buf with
  | [ inside; outside ] ->
    Alcotest.(check bool) "inside stamped with span id" true
      (contains inside (Printf.sprintf "(span %d)" span_id));
    Alcotest.(check bool) "outside has no span stamp" false
      (contains outside "(span ")
  | ls -> Alcotest.failf "expected 2 text lines, got %d" (List.length ls));
  match log_lines jbuf with
  | [ inside; outside ] ->
    Alcotest.(check bool) "json inside has span" true
      (contains inside (Printf.sprintf {|"span":%d|} span_id));
    Alcotest.(check bool) "json outside omits span" false
      (contains outside {|"span":|})
  | ls -> Alcotest.failf "expected 2 JSON lines, got %d" (List.length ls)

(* ---------------------------------------------------------------- *)
(* Flight recorder                                                   *)

let test_flight_disabled_noop () =
  Fl.set_enabled false;
  Fl.clear ();
  Fl.record ~kind:"log" ~level:"info" ~name:"dropped" [];
  Alcotest.(check int) "disabled record drops" 0 (List.length (Fl.events ()))

let test_flight_wraparound () =
  Fl.clear ();
  let extra = 50 in
  Fl.with_enabled true (fun () ->
      for i = 1 to Fl.capacity + extra do
        Fl.record ~kind:"log" ~level:"info" ~name:(string_of_int i) []
      done);
  let evs = Fl.events () in
  Alcotest.(check int) "ring keeps exactly capacity" Fl.capacity
    (List.length evs);
  (match evs with
  | first :: _ ->
    Alcotest.(check string) "oldest surviving event" (string_of_int (extra + 1))
      first.Fl.fl_name
  | [] -> assert false);
  let last = List.nth evs (List.length evs - 1) in
  Alcotest.(check string) "newest event"
    (string_of_int (Fl.capacity + extra))
    last.Fl.fl_name;
  Fl.clear ();
  Alcotest.(check int) "clear drops everything" 0 (List.length (Fl.events ()))

let test_flight_captures_spans_and_low_logs () =
  Fl.clear ();
  (* No trace sink, and a log sink that filters everything below Error:
     the ring still sees both the span and the debug record. *)
  let sink = Lg.create ~min_level:Lg.Error () in
  Fl.with_enabled true (fun () ->
      Lg.with_enabled sink (fun () ->
          Tr.with_span "ringed" ~attrs:[ ("k", Tr.Int 7) ] (fun () ->
              Lg.debug (fun () -> ("below the sink level", [])))));
  let evs = Fl.events () in
  let find name =
    match List.find_opt (fun e -> e.Fl.fl_name = name) evs with
    | Some e -> e
    | None -> Alcotest.failf "flight event %s missing" name
  in
  let span = find "ringed" in
  Alcotest.(check string) "span kind" "span" span.Fl.fl_kind;
  Alcotest.(check (option string)) "span attr rendered" (Some "7")
    (List.assoc_opt "k" span.Fl.fl_detail);
  let low = find "below the sink level" in
  Alcotest.(check string) "log kind" "log" low.Fl.fl_kind;
  Alcotest.(check string) "level preserved" "debug" low.Fl.fl_level;
  Fl.clear ()

let test_flight_dump_json () =
  Fl.clear ();
  Fl.with_enabled true (fun () ->
      Fl.record ~kind:"log" ~level:"warn" ~name:"hostile \xff name"
        [ ("k", "v\"q") ];
      Fl.record ~kind:"span" ~level:"span" ~name:"s" []);
  let path = Filename.temp_file "t_obs_flight" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> Fl.dump_json oc);
      let ic = open_in path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let lines =
        String.split_on_char '\n' text
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int) "one line per event" 2 (List.length lines);
      List.iter
        (fun l ->
          Alcotest.(check bool) "dump line is valid JSON" true (json_accepts l))
        lines;
      Alcotest.(check bool) "hostile byte sanitized" true
        (contains text "hostile \xef\xbf\xbd name"));
  Fl.clear ()

(* ---------------------------------------------------------------- *)
(* GC profiling on spans                                             *)

let sink_of_array a = Array.fold_left ( +. ) 0. a

let test_span_gc_attribution () =
  let t = Tr.create () in
  let acc =
    Tr.with_enabled t (fun () ->
        Tr.with_span "alloc-heavy" (fun () ->
            (* ~200k words of float arrays: enough to force minor
               allocation whatever the GC settings. *)
            let acc = ref 0. in
            for _ = 1 to 100 do
              acc := !acc +. sink_of_array (Array.make 2048 1.)
            done;
            !acc))
  in
  Alcotest.(check bool) "result intact" true (acc = 204800.);
  let e = find_span (Tr.events t) "alloc-heavy" in
  Alcotest.(check bool) "minor words counted" true (e.Tr.gc_minor_words > 0.);
  Alcotest.(check bool) "allocated_words positive" true
    (Tr.allocated_words e > 0.);
  Alcotest.(check bool) "gc counters non-negative" true
    (e.Tr.gc_minor_collections >= 0 && e.Tr.gc_major_collections >= 0);
  (* The aggregate rolls the same numbers up. *)
  let agg =
    List.find (fun (a : Tr.agg) -> a.Tr.agg_name = "alloc-heavy") (Tr.aggregate t)
  in
  Alcotest.(check bool) "aggregate allocation positive" true
    (agg.Tr.total_allocated_words > 0.);
  (* And the exporter surfaces them as args. *)
  let json = Tr.to_chrome_json t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("export contains " ^ needle) true
        (contains json needle))
    [ {|"gc_minor_words"|}; {|"gc_minor_collections"|} ]

(* ---------------------------------------------------------------- *)
(* Metrics                                                           *)

let test_counter_basics () =
  let r = Mx.create () in
  let c = Mx.counter ~registry:r ~help:"h" "t_obs_c_total" in
  Mx.inc c;
  Alcotest.(check int) "disabled inc is a no-op" 0 (Mx.counter_value c);
  Mx.with_enabled true (fun () ->
      Mx.inc c;
      Mx.inc_by c 4;
      Mx.inc_by c (-3));
  Alcotest.(check int) "inc + inc_by, negative ignored" 5 (Mx.counter_value c);
  (* Same (name, labels) returns the same handle. *)
  let c' = Mx.counter ~registry:r ~help:"h" "t_obs_c_total" in
  Mx.with_enabled true (fun () -> Mx.inc c');
  Alcotest.(check int) "idempotent registration" 6 (Mx.counter_value c);
  (* Same name as a different kind is a registration error. *)
  check_raises_invalid "kind mismatch" (fun () ->
      Mx.gauge ~registry:r ~help:"h" "t_obs_c_total")

let test_gauge_basics () =
  let r = Mx.create () in
  let g = Mx.gauge ~registry:r ~help:"h" "t_obs_g" in
  Mx.set_gauge g 3.5;
  Alcotest.(check (float 0.)) "disabled set is a no-op" 0. (Mx.gauge_value g);
  Mx.with_enabled true (fun () -> Mx.set_gauge g 3.5);
  Alcotest.(check (float 0.)) "set" 3.5 (Mx.gauge_value g)

let test_histogram_buckets () =
  let r = Mx.create () in
  let h =
    Mx.histogram ~registry:r ~buckets:[| 1.; 2.; 5. |] ~help:"h" "t_obs_h"
  in
  Mx.with_enabled true (fun () ->
      List.iter (Mx.observe h) [ 0.5; 1.0; 1.5; 2.0; 5.0; 7.0 ]);
  Alcotest.(check int) "count" 6 (Mx.histogram_count h);
  Alcotest.(check (float 1e-12)) "sum" 17.0 (Mx.histogram_sum h);
  match Mx.snapshot ~registry:r () with
  | [ s ] ->
    (* Upper bounds are inclusive and cumulative: 1.0 lands in le=1. *)
    Alcotest.(check (list (pair (float 0.) int)))
      "cumulative buckets"
      [ (1., 2); (2., 4); (5., 5); (Float.infinity, 6) ]
      s.Mx.s_buckets;
    Alcotest.(check int) "sample count" 6 s.Mx.s_count
  | ss -> Alcotest.failf "expected 1 sample, got %d" (List.length ss)

let test_histogram_bad_buckets () =
  let r = Mx.create () in
  check_raises_invalid "unsorted" (fun () ->
      Mx.histogram ~registry:r ~buckets:[| 2.; 1. |] ~help:"h" "t_obs_bad");
  check_raises_invalid "non-finite" (fun () ->
      Mx.histogram ~registry:r
        ~buckets:[| 1.; Float.infinity |]
        ~help:"h" "t_obs_bad2")

let test_prometheus_exposition () =
  let r = Mx.create () in
  let c =
    Mx.counter ~registry:r
      ~labels:[ ("verdict", {|a"b\c|} ^ "\nd") ]
      ~help:"Help with \\ backslash\nand newline" "t_obs_esc_total"
  in
  let h =
    Mx.histogram ~registry:r ~buckets:[| 1.; 2.; 5. |] ~help:"lat" "t_obs_h"
  in
  Mx.with_enabled true (fun () ->
      Mx.inc c;
      List.iter (Mx.observe h) [ 0.5; 1.0; 1.5; 2.0; 5.0; 7.0 ]);
  let text = Mx.to_prometheus ~registry:r () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ String.escaped needle) true
        (contains text needle))
    [
      "# TYPE t_obs_esc_total counter";
      "# HELP t_obs_esc_total Help with \\\\ backslash\\nand newline";
      {|t_obs_esc_total{verdict="a\"b\\c\nd"} 1|};
      "# TYPE t_obs_h histogram";
      {|t_obs_h_bucket{le="1"} 2|};
      {|t_obs_h_bucket{le="2"} 4|};
      {|t_obs_h_bucket{le="5"} 5|};
      {|t_obs_h_bucket{le="+Inf"} 6|};
      "t_obs_h_sum 17";
      "t_obs_h_count 6";
    ];
  (* Exposition ends with a newline (required by the format). *)
  Alcotest.(check bool) "trailing newline" true
    (String.length text > 0 && text.[String.length text - 1] = '\n')

(* ---------------------------------------------------------------- *)
(* Prometheus exposition conformance                                  *)

(* The exposition is line-oriented; comments start with '#'. *)
let expo_sample_lines text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let expo_find_line text prefix =
  match
    List.find_opt
      (fun l ->
        String.length l >= String.length prefix
        && String.sub l 0 (String.length prefix) = prefix)
      (expo_sample_lines text)
  with
  | Some l -> l
  | None -> Alcotest.failf "no sample line starting with %S" prefix

let expo_value line =
  match String.rindex_opt line ' ' with
  | Some i -> begin
    let v = String.sub line (i + 1) (String.length line - i - 1) in
    match float_of_string_opt v with
    | Some f -> f
    | None -> Alcotest.failf "unparseable sample value %S in %S" v line
  end
  | None -> Alcotest.failf "no value in sample line %S" line

(* Test-side unescaper for quoted label values: the spec escapes
   backslash, double-quote and newline; everything else passes through
   verbatim. Returns the decoded value of the first quoted string in
   [line]. *)
let expo_label_value line =
  match String.index_opt line '"' with
  | None -> Alcotest.failf "no quoted label value in %S" line
  | Some start ->
    let buf = Buffer.create 16 in
    let n = String.length line in
    let rec go i =
      if i >= n then Alcotest.failf "unterminated label value in %S" line
      else
        match line.[i] with
        | '\\' when i + 1 < n ->
          (match line.[i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | c -> Alcotest.failf "invalid escape \\%c in %S" c line);
          go (i + 2)
        | '"' -> Buffer.contents buf
        | c ->
          Buffer.add_char buf c;
          go (i + 1)
    in
    go (start + 1)

(* HELP text escapes only backslash and newline (no quoting). *)
let expo_unescape_help s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      match s.[i] with
      | '\\' when i + 1 < n && s.[i + 1] = 'n' ->
        Buffer.add_char buf '\n';
        go (i + 2)
      | '\\' when i + 1 < n && s.[i + 1] = '\\' ->
        Buffer.add_char buf '\\';
        go (i + 2)
      | c ->
        Buffer.add_char buf c;
        go (i + 1)
  in
  go 0;
  Buffer.contents buf

let test_prom_inf_bucket_always_present () =
  (* An unobserved histogram still exposes the implicit +Inf overflow
     bucket plus _sum and _count, all zero — scrapers treat a missing
     +Inf series as a format error. *)
  let r = Mx.create () in
  let h =
    Mx.histogram ~registry:r ~buckets:[| 0.5 |] ~help:"empty" "t_obs_conf_e"
  in
  let text = Mx.to_prometheus ~registry:r () in
  Alcotest.(check (float 0.)) "+Inf bucket present at zero" 0.
    (expo_value (expo_find_line text {|t_obs_conf_e_bucket{le="+Inf"}|}));
  Alcotest.(check (float 0.)) "zero sum" 0.
    (expo_value (expo_find_line text "t_obs_conf_e_sum"));
  Alcotest.(check (float 0.)) "zero count" 0.
    (expo_value (expo_find_line text "t_obs_conf_e_count"));
  (* Still there, and consistent, once observed. *)
  Mx.with_enabled true (fun () -> Mx.observe h 9.);
  let text = Mx.to_prometheus ~registry:r () in
  Alcotest.(check (float 0.)) "overflow observation lands in +Inf" 1.
    (expo_value (expo_find_line text {|t_obs_conf_e_bucket{le="+Inf"}|}))

let test_prom_sum_count_consistency =
  qcheck ~count:50 "exposition _sum/_count agree with the observations"
    QCheck2.Gen.(list_size (int_range 0 40) (float_range 0. 10.))
    (fun obs ->
      let r = Mx.create () in
      let h =
        Mx.histogram ~registry:r ~buckets:[| 1.; 2.; 5. |] ~help:"c"
          "t_obs_conf_h"
      in
      Mx.with_enabled true (fun () -> List.iter (Mx.observe h) obs);
      let text = Mx.to_prometheus ~registry:r () in
      let bucket le =
        expo_value
          (expo_find_line text
             (Printf.sprintf {|t_obs_conf_h_bucket{le="%s"}|} le))
      in
      let count = expo_value (expo_find_line text "t_obs_conf_h_count") in
      let sum = expo_value (expo_find_line text "t_obs_conf_h_sum") in
      (* _count equals the +Inf cumulative bucket equals the number of
         observations; _sum equals their total; cumulative buckets are
         monotone in le. *)
      Alcotest.(check (float 0.)) "count = observations"
        (float_of_int (List.length obs))
        count;
      Alcotest.(check (float 0.)) "+Inf bucket = count" count (bucket "+Inf");
      check_close ~rtol:1e-9 "sum matches" (List.fold_left ( +. ) 0. obs) sum;
      let cumulative = List.map bucket [ "1"; "2"; "5"; "+Inf" ] in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) "buckets cumulative-monotone" true
        (monotone cumulative);
      true)

let test_prom_help_type_escaping () =
  let help = "line one\nline \\ two\\n not an escape" in
  let r = Mx.create () in
  ignore (Mx.counter ~registry:r ~help "t_obs_conf_help_total");
  let text = Mx.to_prometheus ~registry:r () in
  let help_line =
    match
      List.find_opt
        (fun l ->
          String.length l >= 7 && String.sub l 0 7 = "# HELP ")
        (String.split_on_char '\n' text)
    with
    | Some l -> l
    | None -> Alcotest.fail "no HELP line"
  in
  (* "# HELP <name> <escaped help>" — the payload must unescape back to
     the original, multibyte-newline-and-backslash text included. *)
  let payload =
    let prefix = "# HELP t_obs_conf_help_total " in
    Alcotest.(check bool) "HELP names the metric" true
      (String.length help_line > String.length prefix
      && String.sub help_line 0 (String.length prefix) = prefix);
    String.sub help_line (String.length prefix)
      (String.length help_line - String.length prefix)
  in
  Alcotest.(check bool) "escaped HELP is one line" false
    (String.contains payload '\n');
  Alcotest.(check string) "HELP round-trips" help
    (expo_unescape_help payload);
  Alcotest.(check bool) "TYPE line present" true
    (contains text "# TYPE t_obs_conf_help_total counter")

let gen_hostile_label =
  (* Favor the characters the escaper must handle. *)
  QCheck2.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'z'; ' '; '"'; '\\'; '\n'; '{'; '}'; '=' ])
      (int_range 0 24))

let test_prom_label_roundtrip =
  qcheck ~count:100 "label values escape and unescape to the original"
    gen_hostile_label
    (fun value ->
      let r = Mx.create () in
      let c =
        Mx.counter ~registry:r
          ~labels:[ ("verdict", value) ]
          ~help:"h" "t_obs_conf_lbl_total"
      in
      Mx.with_enabled true (fun () -> Mx.inc c);
      let text = Mx.to_prometheus ~registry:r () in
      let line = expo_find_line text "t_obs_conf_lbl_total{" in
      (* The sample line must be a single physical line whose decoded
         label value equals what was registered. *)
      Alcotest.(check string) "round-trip" value (expo_label_value line);
      Alcotest.(check (float 0.)) "value survives the labels" 1.
        (expo_value line);
      true)

let test_metrics_json () =
  let r = Mx.create () in
  let h = Mx.histogram ~registry:r ~buckets:[| 1. |] ~help:"h" "t_obs_jh" in
  Mx.with_enabled true (fun () -> Mx.observe h 0.5);
  let json =
    Emflow.Json_out.to_string (Emflow.Json_out.of_metrics (Mx.snapshot ~registry:r ()))
  in
  Alcotest.(check bool) "valid json" true (json_accepts json);
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains json needle))
    [ {|"name":"t_obs_jh"|}; {|"kind":"histogram"|}; {|"le":"+Inf"|}; {|"count":1|} ]

(* ---------------------------------------------------------------- *)
(* Equivalence: telemetry on leaves analysis results bit-identical    *)

let small_grid () =
  Gg.generate
    {
      Gg.tech = Pdn.Tech.ibm_like;
      die_width = 1.5e-3;
      die_height = 1.5e-3;
      stripe_counts = [| 14; 10; 6; 4 |];
      pad_every = 4;
      load_fraction = 0.4;
      current_per_net = 1.0;
      bottom_tap_pitch = None;
      voltage_domains = 1;
      seed = 23L;
    }

(* Baseline computed with all telemetry off; solving the grid once keeps
   the property fast. *)
let equiv_fixture =
  lazy
    (let g = small_grid () in
     let sol = Spice.Mna.solve g.Gg.netlist in
     let compacts = Ex.extract_compact ~tech:g.Gg.tech sol in
     (compacts, Flow.run_on_compact compacts))

let bits = Int64.bits_of_float

let check_segments_bit_identical clean dirty =
  Alcotest.(check int) "same number of segment records" (Array.length clean)
    (Array.length dirty);
  Array.iteri
    (fun i (c : Flow.segment_record) ->
      let d = dirty.(i) in
      let same =
        c.Flow.layer = d.Flow.layer
        && bits c.Flow.length = bits d.Flow.length
        && bits c.Flow.j = bits d.Flow.j
        && bits c.Flow.stress_tail = bits d.Flow.stress_tail
        && bits c.Flow.stress_head = bits d.Flow.stress_head
        && c.Flow.blech_immortal = d.Flow.blech_immortal
        && c.Flow.exact_immortal = d.Flow.exact_immortal
        && c.Flow.maxpath_immortal = d.Flow.maxpath_immortal
      in
      if not same then Alcotest.failf "segment record %d differs" i)
    clean

let test_telemetry_equivalence =
  qcheck ~count:8
    "tracing + metrics + logging + flight leave analysis results bit-identical"
    QCheck2.Gen.(int_range 1 4)
    (fun jobs ->
      let compacts, clean = Lazy.force equiv_fixture in
      let t = Tr.create () in
      let sink =
        Lg.create ~min_level:Lg.Debug
          ~text:(Lg.Buffer (Buffer.create 4096))
          ~json:(Lg.Buffer (Buffer.create 4096))
          ()
      in
      Fl.clear ();
      let traced =
        Mx.with_enabled true (fun () ->
            Tr.with_enabled t (fun () ->
                Lg.with_enabled sink (fun () ->
                    Fl.with_enabled true (fun () ->
                        Flow.run_on_compact ~jobs compacts))))
      in
      Fl.clear ();
      Alcotest.(check bool) "confusion counts identical" true
        (clean.Flow.counts = traced.Flow.counts);
      check_segments_bit_identical clean.Flow.segments traced.Flow.segments;
      (* And the run actually got traced: one span per structure. *)
      let structure_spans =
        List.filter (fun (e : Tr.event) -> e.Tr.name = "structure") (Tr.events t)
      in
      Alcotest.(check int) "one span per structure" (List.length compacts)
        (List.length structure_spans);
      List.length compacts = List.length structure_spans)

let suites =
  [
    ( "obs.trace",
      [
        case "disabled is a guarded no-op" test_span_disabled_noop;
        case "nesting, ordering, containment" test_span_nesting;
        case "error flag on raising span" test_span_error_flag;
        case "parallel workers on distinct tracks" test_parallel_tracks;
      ] );
    ( "obs.chrome",
      [
        case "acceptor sanity" test_json_acceptor_sanity;
        case "export is well-formed and complete" test_chrome_export;
        case "hostile names stay valid JSON" test_chrome_export_hostile_names;
      ] );
    ( "obs.log",
      [
        case "disabled never runs the thunk" test_log_disabled_noop;
        case "level filtering and text format" test_log_level_filter;
        case "JSON sink emits valid lines" test_log_json_sink;
        case "records correlate with the open span" test_log_span_correlation;
      ] );
    ( "obs.flight",
      [
        case "disabled record drops" test_flight_disabled_noop;
        case "ring wraps past capacity" test_flight_wraparound;
        case "captures spans and filtered logs"
          test_flight_captures_spans_and_low_logs;
        case "JSON dump is valid line-by-line" test_flight_dump_json;
      ] );
    ("obs.gc", [ case "span GC deltas attributed" test_span_gc_attribution ]);
    ( "obs.metrics",
      [
        case "counter gating and idempotence" test_counter_basics;
        case "gauge gating" test_gauge_basics;
        case "histogram bucket boundaries" test_histogram_buckets;
        case "histogram rejects bad bounds" test_histogram_bad_buckets;
        case "prometheus exposition and escaping" test_prometheus_exposition;
        case "metrics JSON snapshot" test_metrics_json;
      ] );
    ( "obs.prometheus",
      [
        case "+Inf bucket always present" test_prom_inf_bucket_always_present;
        test_prom_sum_count_consistency;
        case "HELP/TYPE escaping round-trips" test_prom_help_type_escaping;
        test_prom_label_roundtrip;
      ] );
    ("obs.equivalence", [ test_telemetry_equivalence ]);
  ]
