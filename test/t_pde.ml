open T_helpers
module M = Em_core.Material
module U = Em_core.Units
module St = Em_core.Structure
module Ss = Em_core.Steady_state
module Kcl = Em_core.Kirchhoff
module Mesh = Empde.Mesh1d
module Asm = Empde.Assembly
module Psteady = Empde.Steady
module Kor = Empde.Korhonen
module Rng = Numerics.Rng

let cu = M.cu_dac21

let seg ?(h = 2e-7) ~l ~w ~j () = St.segment ~height:h ~length:l ~width:w ~j ()

(* ---------------------------------------------------------------- *)
(* Mesh1d                                                            *)

let test_mesh_counts () =
  let s = St.line [ seg ~l:(U.um 10.) ~w:(U.um 1.) ~j:1e10 ();
                    seg ~l:(U.um 5.) ~w:(U.um 1.) ~j:1e10 () ] in
  let mesh = Mesh.discretize ~target_dx:(U.um 1.) s in
  Alcotest.(check int) "cells seg0" 10 (Mesh.num_cells mesh ~seg:0);
  Alcotest.(check int) "cells seg1" 5 (Mesh.num_cells mesh ~seg:1);
  (* 3 graph nodes + 9 + 4 interior points. *)
  Alcotest.(check int) "unknowns" 16 mesh.Mesh.num_unknowns;
  (* Endpoint unknowns are graph nodes; interiors follow. *)
  Alcotest.(check int) "tail of seg0" 0 (Mesh.point mesh ~seg:0 ~idx:0);
  Alcotest.(check int) "head of seg0" 1 (Mesh.point mesh ~seg:0 ~idx:10);
  Alcotest.(check int) "tail of seg1" 1 (Mesh.point mesh ~seg:1 ~idx:0);
  Alcotest.(check int) "first interior" 3 (Mesh.point mesh ~seg:0 ~idx:1)

let test_mesh_min_cells () =
  let s = St.single (seg ~l:(U.um 0.1) ~w:(U.um 1.) ~j:0. ()) in
  let mesh = Mesh.discretize ~target_dx:(U.um 1.) ~min_cells:4 s in
  Alcotest.(check int) "min cells enforced" 4 (Mesh.num_cells mesh ~seg:0)

let test_mesh_volume () =
  let s = St.line [ seg ~l:(U.um 7.) ~w:(U.um 0.8) ~j:0. ();
                    seg ~l:(U.um 3.) ~w:(U.um 1.4) ~j:0. () ] in
  let mesh = Mesh.discretize s in
  check_close ~rtol:1e-12 "volume partition" (St.volume s) (Mesh.total_volume mesh)

let test_mesh_interpolation () =
  let s = St.single (seg ~l:(U.um 10.) ~w:(U.um 1.) ~j:0. ()) in
  let mesh = Mesh.discretize ~target_dx:(U.um 1.) s in
  (* Fill unknowns with a linear ramp in x; interpolation must be exact. *)
  let u = Array.make mesh.Mesh.num_unknowns 0. in
  for i = 0 to Mesh.num_cells mesh ~seg:0 do
    u.(Mesh.point mesh ~seg:0 ~idx:i) <- Mesh.position mesh ~seg:0 ~idx:i
  done;
  check_close ~rtol:1e-12 "interp midpoint" (U.um 5.)
    (Mesh.interpolate mesh u ~seg:0 ~x:(U.um 5.));
  check_close ~rtol:1e-12 "interp off-grid" (U.um 3.3)
    (Mesh.interpolate mesh u ~seg:0 ~x:(U.um 3.3));
  check_raises_invalid "interp out of range" (fun () ->
      ignore (Mesh.interpolate mesh u ~seg:0 ~x:(U.um 11.)))

(* ---------------------------------------------------------------- *)
(* Assembly                                                          *)

let test_assembly_symmetric_and_conservative () =
  let s = St.line [ seg ~l:(U.um 6.) ~w:(U.um 1.) ~j:2e10 ();
                    seg ~l:(U.um 9.) ~w:(U.um 0.5) ~j:(-1e10) () ] in
  let asm = Asm.build cu (Mesh.discretize ~target_dx:(U.um 1.) s) in
  Alcotest.(check bool) "K symmetric" true
    (Numerics.Sparse.is_symmetric asm.Asm.stiffness);
  (* Rows of K sum to zero (constants in the nullspace). *)
  let sums = Numerics.Sparse.row_sums asm.Asm.stiffness in
  Array.iteri
    (fun i r -> check_close ~atol:1e-20 (Printf.sprintf "row %d" i) 0. r)
    sums;
  (* The drift rhs is compatible: total sums to zero. *)
  check_close ~atol:1e-25 "rhs compatible" 0. (Numerics.Vector.sum asm.Asm.drift)

(* ---------------------------------------------------------------- *)
(* Steady solver vs closed form                                      *)

let check_against_closed_form ?(rtol = 1e-6) name s =
  let closed = Ss.solve cu s in
  let sol = Psteady.solve_structure ~tol:1e-13 cu s in
  let scale =
    Array.fold_left (fun a v -> Float.max a (Float.abs v)) 1e4
      closed.Ss.node_stress
  in
  Array.iteri
    (fun v expected ->
      check_close ~rtol ~atol:(rtol *. scale)
        (Printf.sprintf "%s node %d" name v)
        expected sol.Psteady.node_stress.(v))
    closed.Ss.node_stress

let test_steady_single_segment () =
  check_against_closed_form "single"
    (St.single (seg ~l:(U.um 20.) ~w:(U.um 1.) ~j:1e10 ()))

let test_steady_two_segment () =
  check_against_closed_form "two-seg"
    (St.line [ seg ~l:(U.um 12.) ~w:(U.um 1.) ~j:3e9 ();
               seg ~l:(U.um 25.) ~w:(U.um 0.6) ~j:8e9 () ])

let test_steady_t_junction () =
  check_against_closed_form "T"
    (St.make ~num_nodes:4
       [|
         (0, 1, seg ~l:(U.um 20.) ~w:(U.um 1.) ~j:6e10 ());
         (1, 2, seg ~l:(U.um 10.) ~w:(U.um 1.) ~j:(-4e10) ());
         (1, 3, seg ~l:(U.um 15.) ~w:(U.um 1.) ~j:3e10 ());
       |])

let test_steady_mesh_cycle () =
  (* Consistent currents on a 2x2 mesh (one cycle) from an injection. *)
  let geom =
    St.grid_mesh ~rows:2 ~cols:2 (fun ~horizontal:_ _ _ ->
        seg ~l:(U.um 8.) ~w:(U.um 1.) ~j:0. ())
  in
  let inj = Array.make 4 0. in
  inj.(0) <- 2e-4;
  inj.(3) <- -2e-4;
  let s = (Kcl.solve cu geom ~injections:inj).Kcl.structure in
  check_against_closed_form "mesh" s

let test_steady_interior_profile_linear () =
  let l = U.um 10. and j = 2e10 in
  let s = St.single (seg ~l ~w:(U.um 1.) ~j ()) in
  let sol = Psteady.solve_structure ~tol:1e-13 cu s in
  let beta = M.beta cu in
  (* sigma(x) = beta j (l/2 - x). *)
  List.iter
    (fun frac ->
      let x = frac *. l in
      check_close ~rtol:1e-6 ~atol:1e2
        (Printf.sprintf "profile at %.2f l" frac)
        (beta *. j *. ((l /. 2.) -. x))
        (Psteady.sample sol ~seg:0 ~x))
    [ 0.; 0.25; 0.5; 0.75; 1. ]

let test_steady_mass_gauge () =
  let s = St.line [ seg ~l:(U.um 6.) ~w:(U.um 2.) ~j:4e10 ();
                    seg ~l:(U.um 14.) ~w:(U.um 0.3) ~j:(-2e10) () ] in
  let sol = Psteady.solve_structure ~tol:1e-13 cu s in
  check_close ~atol:1e-9 "discrete Lemma 3" 0. (Psteady.mass_total sol);
  check_close ~atol:1e-8 "stiffness residual" 0.
    (Asm.residual_norm sol.Psteady.assembly sol.Psteady.sigma)

(* ---------------------------------------------------------------- *)
(* Transient solver                                                  *)

let test_transient_reaches_steady () =
  let s = St.line [ seg ~l:(U.um 12.) ~w:(U.um 1.) ~j:3e9 ();
                    seg ~l:(U.um 25.) ~w:(U.um 0.6) ~j:8e9 () ] in
  let mesh = Mesh.discretize ~target_dx:(U.um 1.) s in
  let r = Kor.run cu mesh in
  Alcotest.(check bool) "declares steady" true r.Kor.steady;
  let closed = Ss.solve cu s in
  let scale =
    Array.fold_left (fun a v -> Float.max a (Float.abs v)) 1e4
      closed.Ss.node_stress
  in
  Array.iteri
    (fun v expected ->
      check_close ~rtol:1e-4 ~atol:(1e-4 *. scale)
        (Printf.sprintf "transient limit node %d" v)
        expected r.Kor.node_stress.(v))
    closed.Ss.node_stress

let test_transient_mass_conserved_along_the_way () =
  let s = St.single (seg ~l:(U.um 20.) ~w:(U.um 1.) ~j:1e10 ()) in
  let mesh = Mesh.discretize ~target_dx:(U.um 1.) s in
  let r = Kor.run cu mesh in
  (* Starting from zero total stress-mass, the conservative scheme keeps
     it ~0 at the end as well. *)
  let acc = ref 0. in
  Array.iteri
    (fun i v -> acc := !acc +. (mesh.Mesh.control_volume.(i) *. v))
    r.Kor.sigma;
  let scale =
    Mesh.total_volume mesh *. Numerics.Vector.norm_inf r.Kor.sigma
  in
  check_close ~atol:1e-8 "transient mass" 0. (!acc /. Float.max 1e-300 scale)

let test_transient_monotone_peak_growth () =
  (* From zero stress the peak |stress| grows monotonically to steady
     state for a single segment. *)
  let s = St.single (seg ~l:(U.um 30.) ~w:(U.um 1.) ~j:2e10 ()) in
  let r = Kor.run_structure ~target_dx:(U.um 1.5) cu s in
  let p = r.Kor.trace.Kor.peak_stress in
  for i = 1 to Array.length p - 1 do
    Alcotest.(check bool) "monotone" true (p.(i) >= p.(i - 1) -. 1.)
  done

let test_time_to_critical () =
  (* A clearly mortal wire must cross the threshold at a finite time;
     time_to_critical must find it and it must be positive. *)
  let jl_crit = M.jl_crit cu in
  let l = U.um 50. in
  let s = St.single (seg ~l ~w:(U.um 1.) ~j:(3. *. jl_crit /. l) ()) in
  let r = Kor.run_structure ~target_dx:(U.um 2.) cu s in
  (match Kor.time_to_critical r ~threshold:(M.effective_critical_stress cu) with
  | None -> Alcotest.fail "mortal wire must nucleate"
  | Some t ->
    Alcotest.(check bool) "positive time" true (t > 0.);
    Alcotest.(check bool) "before end of run" true (t <= r.Kor.time));
  (* An immortal wire never crosses. *)
  let s2 = St.single (seg ~l ~w:(U.um 1.) ~j:(0.3 *. jl_crit /. l) ()) in
  let r2 = Kor.run_structure ~target_dx:(U.um 2.) cu s2 in
  Alcotest.(check bool) "immortal never crosses" true
    (Kor.time_to_critical r2 ~threshold:(M.effective_critical_stress cu) = None)

let test_transient_options_guard () =
  let s = St.single (seg ~l:(U.um 10.) ~w:(U.um 1.) ~j:1e10 ()) in
  let mesh = Mesh.discretize s in
  check_raises_invalid "bad growth" (fun () ->
      ignore (Kor.run ~options:{ Kor.default_options with Kor.growth = 0.9 } cu mesh))

(* Random cross-validation: the PDE solver and the closed form agree on
   random trees. *)
let prop_pde_matches_closed_form (n, seed) =
  let rng = Rng.create (Int64.of_int (seed + 13)) in
  let s =
    St.random_tree rng ~num_nodes:n (fun _ ->
        seg
          ~l:(U.um (Rng.uniform rng 2. 30.))
          ~w:(U.um (Rng.uniform rng 0.3 1.5))
          ~j:(Rng.uniform rng (-4e10) 4e10)
          ())
  in
  let closed = (Ss.solve cu s).Ss.node_stress in
  let pde =
    (Psteady.solve_structure ~tol:1e-12 ~target_dx:(U.um 2.) cu s)
      .Psteady.node_stress
  in
  let scale =
    Array.fold_left (fun a v -> Float.max a (Float.abs v)) 1e5 closed
  in
  Array.for_all2
    (fun a b -> Float.abs (a -. b) <= 1e-5 *. scale)
    closed pde


(* ---------------------------------------------------------------- *)
(* Analytic transient solution (Korhonen series)                     *)

module An = Empde.Analytic
module Vg = Empde.Void_growth

let test_analytic_limits () =
  let l = U.um 30. and j = 2e10 in
  (* t = 0: zero stress everywhere (series telescopes). *)
  List.iter
    (fun frac ->
      check_close ~atol:1e0 (Printf.sprintf "t=0 at %.2f l" frac) 0.
        (An.stress cu ~length:l ~j ~x:(frac *. l) ~t:0.))
    [ 0.; 0.25; 0.5; 1. ];
  (* t -> infinity: the linear steady profile. *)
  let t_inf = 100. *. An.time_constant cu ~length:l in
  List.iter
    (fun frac ->
      let x = frac *. l in
      check_close ~rtol:1e-9 ~atol:1e-3
        (Printf.sprintf "steady at %.2f l" frac)
        (M.beta cu *. j *. ((l /. 2.) -. x))
        (An.stress cu ~length:l ~j ~x ~t:t_inf))
    [ 0.; 0.25; 0.5; 1. ]

let test_analytic_monotone_peak () =
  let l = U.um 30. and j = 2e10 in
  let tau = An.time_constant cu ~length:l in
  let prev = ref (-1.) in
  List.iter
    (fun frac ->
      let p = An.peak_stress cu ~length:l ~j ~t:(frac *. tau) in
      Alcotest.(check bool) "monotone growth" true (p > !prev);
      prev := p)
    [ 0.01; 0.05; 0.2; 0.5; 1.; 2.; 5. ]

let test_analytic_guards () =
  check_raises_invalid "x out of range" (fun () ->
      ignore (An.stress cu ~length:1e-6 ~j:1e10 ~x:2e-6 ~t:0.));
  check_raises_invalid "negative t" (fun () ->
      ignore (An.stress cu ~length:1e-6 ~j:1e10 ~x:0. ~t:(-1.)))

let transient_at_time s t steps =
  let dt = t /. float_of_int steps in
  let options =
    { Kor.default_options with
      Kor.dt0 = dt; growth = 1.; max_steps = steps; steady_rtol = 0. }
  in
  Kor.run_structure ~options ~target_dx:(U.um 0.5) cu s

let test_transient_matches_analytic_midway () =
  (* The FV transient against the series at t = tau/2, where the stress
     is in full flight (~60% of steady). Implicit Euler is O(dt). *)
  let l = U.um 30. and j = 2e10 in
  let s = St.single (seg ~l ~w:(U.um 1.) ~j ()) in
  let tau = An.time_constant cu ~length:l in
  let t = tau /. 2. in
  let r = transient_at_time s t 400 in
  check_close ~rtol:1e-12 "time accounting" t r.Kor.time;
  let exact = An.peak_stress cu ~length:l ~j ~t in
  check_close ~rtol:0.01 "peak vs series" exact r.Kor.node_stress.(0);
  (* And at an interior point. *)
  let x = 0.3 *. l in
  let mesh_value =
    Empde.Mesh1d.interpolate r.Kor.assembly.Empde.Assembly.mesh r.Kor.sigma
      ~seg:0 ~x
  in
  check_close ~rtol:0.02 ~atol:1e4 "interior vs series"
    (An.stress cu ~length:l ~j ~x ~t)
    mesh_value

let test_transient_first_order_convergence () =
  (* Halving dt should roughly halve the time-discretization error. *)
  let l = U.um 30. and j = 2e10 in
  let s = St.single (seg ~l ~w:(U.um 1.) ~j ()) in
  let tau = An.time_constant cu ~length:l in
  let t = tau /. 2. in
  let exact = An.peak_stress cu ~length:l ~j ~t in
  let err steps =
    Float.abs ((transient_at_time s t steps).Kor.node_stress.(0) -. exact)
  in
  let e100 = err 100 and e200 = err 200 in
  let ratio = e100 /. e200 in
  Alcotest.(check bool)
    (Printf.sprintf "first order (ratio %.2f)" ratio)
    true
    (ratio > 1.5 && ratio < 3.)

let test_analytic_nucleation_time () =
  let l = U.um 50. in
  let jl_crit = M.jl_crit cu in
  (* Immortal wire: no nucleation. *)
  Alcotest.(check bool) "immortal -> None" true
    (An.nucleation_time cu ~length:l ~j:(0.8 *. jl_crit /. l) = None);
  (* Mortal wire: finite, and the peak at that time equals the
     threshold. *)
  (match An.nucleation_time cu ~length:l ~j:(2. *. jl_crit /. l) with
  | None -> Alcotest.fail "mortal wire must nucleate"
  | Some t ->
    check_close ~rtol:1e-6 "peak at t_nuc = threshold"
      (M.effective_critical_stress cu)
      (An.peak_stress cu ~length:l ~j:(2. *. jl_crit /. l) ~t));
  (* Harder drive nucleates sooner. *)
  let t2 = Option.get (An.nucleation_time cu ~length:l ~j:(2. *. jl_crit /. l)) in
  let t4 = Option.get (An.nucleation_time cu ~length:l ~j:(4. *. jl_crit /. l)) in
  Alcotest.(check bool) "monotone in j" true (t4 < t2)

let test_transient_nucleation_vs_analytic () =
  (* The FV solver's time_to_critical agrees with the series inversion
     within the coarse geometric-step resolution. *)
  let l = U.um 50. in
  let j = 2.5 *. M.jl_crit cu /. l in
  let s = St.single (seg ~l ~w:(U.um 1.) ~j ()) in
  let options = { Kor.default_options with Kor.growth = 1.15; max_steps = 400 } in
  let r = Kor.run_structure ~options ~target_dx:(U.um 1.) cu s in
  match
    ( Kor.time_to_critical r ~threshold:(M.effective_critical_stress cu),
      An.nucleation_time cu ~length:l ~j )
  with
  | Some t_fv, Some t_exact ->
    check_close ~rtol:0.15 "nucleation times agree" t_exact t_fv
  | _ -> Alcotest.fail "both must nucleate"

(* ---------------------------------------------------------------- *)
(* Void growth                                                       *)

let test_void_growth_velocity () =
  let v1 = Vg.drift_velocity cu ~j:1e10 in
  let v2 = Vg.drift_velocity cu ~j:2e10 in
  Alcotest.(check bool) "positive" true (v1 > 0.);
  check_close ~rtol:1e-12 "linear in j" (2. *. v1) v2;
  check_close ~rtol:1e-12 "sign-independent" v1 (Vg.drift_velocity cu ~j:(-1e10))

let test_void_growth_time () =
  let t = Vg.growth_time cu ~j:1e10 ~critical_void:50e-9 in
  Alcotest.(check bool) "finite for j>0" true (Float.is_finite t && t > 0.);
  Alcotest.(check bool) "infinite for j=0" true
    (Vg.growth_time cu ~j:0. ~critical_void:50e-9 = Float.infinity);
  check_raises_invalid "bad void size" (fun () ->
      ignore (Vg.growth_time cu ~j:1e10 ~critical_void:0.))

let test_void_ttf_phases () =
  let l = U.um 50. in
  let jl_crit = M.jl_crit cu in
  let mortal = Vg.time_to_failure cu ~length:l ~j:(3. *. jl_crit /. l) in
  (match mortal.Vg.total with
  | Some total ->
    Alcotest.(check bool) "total = nucleation + growth" true
      (total > mortal.Vg.growth
      && total > Option.get mortal.Vg.nucleation)
  | None -> Alcotest.fail "mortal wire must fail");
  let immortal = Vg.time_to_failure cu ~length:l ~j:(0.5 *. jl_crit /. l) in
  Alcotest.(check bool) "immortal never fails" true (immortal.Vg.total = None)


let test_crank_nicolson_second_order () =
  (* theta = 0.5 error falls ~4x when dt halves (vs ~2x for theta = 1). *)
  let l = U.um 30. and j = 2e10 in
  let s = St.single (seg ~l ~w:(U.um 1.) ~j ()) in
  let tau = An.time_constant cu ~length:l in
  let t = tau /. 2. in
  let run_cn steps =
    let dt = t /. float_of_int steps in
    let options =
      { Kor.dt0 = dt; growth = 1.; max_steps = steps; steady_rtol = 0.;
        theta = 0.5; cg_tol = 1e-13 }
    in
    (Kor.run_structure ~options ~target_dx:(U.um 0.5) cu s).Kor.node_stress.(0)
  in
  (* Self-convergence against a much finer CN run cancels the (shared)
     spatial discretization error, isolating the temporal order. *)
  let reference = run_cn 800 in
  let e50 = Float.abs (run_cn 50 -. reference) in
  let e100 = Float.abs (run_cn 100 -. reference) in
  let ratio = e50 /. e100 in
  Alcotest.(check bool)
    (Printf.sprintf "second order (ratio %.2f)" ratio)
    true
    (ratio > 3. && ratio < 6.);
  (* And CN tracks the analytic series closely in absolute terms. *)
  let exact = An.peak_stress cu ~length:l ~j ~t in
  T_helpers.check_close ~rtol:5e-3 "CN vs series" exact (run_cn 100)

let test_theta_guard () =
  let s = St.single (seg ~l:(U.um 10.) ~w:(U.um 1.) ~j:1e10 ()) in
  let mesh = Mesh.discretize s in
  check_raises_invalid "theta below 0.5" (fun () ->
      ignore
        (Kor.run ~options:{ Kor.default_options with Kor.theta = 0.2 } cu mesh))

let suites =
  [
    ( "pde.mesh1d",
      [
        case "point counts and numbering" test_mesh_counts;
        case "min_cells" test_mesh_min_cells;
        case "volume partition" test_mesh_volume;
        case "interpolation" test_mesh_interpolation;
      ] );
    ( "pde.assembly",
      [ case "symmetry and conservation" test_assembly_symmetric_and_conservative ] );
    ( "pde.steady",
      [
        case "single segment" test_steady_single_segment;
        case "two-segment line" test_steady_two_segment;
        case "T junction" test_steady_t_junction;
        case "mesh with cycle" test_steady_mesh_cycle;
        case "linear interior profile" test_steady_interior_profile_linear;
        case "mass gauge" test_steady_mass_gauge;
      ] );
    ( "pde.transient",
      [
        case "reaches steady state" test_transient_reaches_steady;
        case "mass conserved" test_transient_mass_conserved_along_the_way;
        case "monotone peak growth" test_transient_monotone_peak_growth;
        case "time to critical" test_time_to_critical;
        case "options guard" test_transient_options_guard;
      ] );
    ( "pde.analytic",
      [
        case "t=0 and steady limits" test_analytic_limits;
        case "monotone peak growth" test_analytic_monotone_peak;
        case "guards" test_analytic_guards;
        case "FV matches series midway" test_transient_matches_analytic_midway;
        case "implicit Euler is first order" test_transient_first_order_convergence;
        case "Crank-Nicolson is second order" test_crank_nicolson_second_order;
        case "theta guard" test_theta_guard;
        case "series nucleation time" test_analytic_nucleation_time;
        case "FV nucleation vs series" test_transient_nucleation_vs_analytic;
      ] );
    ( "pde.void_growth",
      [
        case "drift velocity" test_void_growth_velocity;
        case "growth time" test_void_growth_time;
        case "two-phase TTF" test_void_ttf_phases;
      ] );
    ( "pde.properties",
      [
        qcheck ~count:25 "PDE matches closed form on random trees"
          QCheck2.Gen.(pair (int_range 2 12) (int_bound 100000))
          prop_pde_matches_closed_form;
      ] );
  ]
