open T_helpers
module T = Pdn.Tech
module Fp = Pdn.Floorplan
module Gg = Pdn.Grid_gen
module Op = Pdn.Openpdn
module Ir = Pdn.Irdrop
module N = Spice.Netlist
module Rng = Numerics.Rng

let um = 1e-6

(* ---------------------------------------------------------------- *)
(* Tech                                                              *)

let test_tech_presets () =
  List.iter
    (fun tech ->
      Alcotest.(check bool)
        (tech.T.name ^ " has >= 3 layers")
        true
        (Array.length tech.T.layers >= 3);
      Alcotest.(check bool) "positive via" true (tech.T.via_resistance > 0.);
      Alcotest.(check bool) "positive supply" true (tech.T.supply_voltage > 0.);
      (* Directions alternate. *)
      Array.iteri
        (fun i (l : T.layer) ->
          if i > 0 then
            Alcotest.(check bool) "alternating" true
              (l.T.direction <> tech.T.layers.(i - 1).T.direction))
        tech.T.layers)
    [ T.ibm_like; T.n28; T.nangate45 ]

let test_tech_resistance () =
  let layer = T.bottom T.ibm_like in
  (* R = rho * l / (w * t). *)
  let expect =
    layer.T.resistivity *. (100. *. um)
    /. (layer.T.width *. layer.T.thickness)
  in
  check_close ~rtol:1e-12 "wire resistance" expect
    (T.wire_resistance layer ~length:(100. *. um));
  check_close ~rtol:1e-12 "sheet resistance"
    (layer.T.resistivity /. layer.T.thickness)
    (T.sheet_resistance layer)

let test_tech_guards () =
  check_raises_invalid "layer_at range" (fun () ->
      ignore (T.layer_at T.n28 99))

(* ---------------------------------------------------------------- *)
(* Floorplan                                                         *)

let test_floorplan_normalization () =
  let fp =
    Fp.make ~width:(1000. *. um) ~height:(1000. *. um) ~total_current:2.
      [
        { Fp.cx = 200. *. um; cy = 200. *. um; radius = 100. *. um; weight = 3. };
        { Fp.cx = 800. *. um; cy = 800. *. um; radius = 100. *. um; weight = 1. };
      ]
  in
  (* Demand is higher at the heavier hotspot. *)
  let d1 = Fp.demand_at fp ~x:(200. *. um) ~y:(200. *. um) in
  let d2 = Fp.demand_at fp ~x:(800. *. um) ~y:(800. *. um) in
  let dfar = Fp.demand_at fp ~x:(500. *. um) ~y:(50. *. um) in
  Alcotest.(check bool) "heavier hotspot dominates" true (d1 > d2);
  Alcotest.(check bool) "hotspots beat background" true (d2 > dfar);
  Alcotest.(check bool) "background positive" true (dfar > 0.)

let test_floorplan_sample_weights () =
  let rng = Rng.create 5L in
  let fp =
    Fp.random rng ~width:(500. *. um) ~height:(500. *. um) ~total_current:3. ()
  in
  let points =
    Array.init 50 (fun i ->
        (float_of_int (i mod 10) *. 50. *. um, float_of_int (i / 10) *. 100. *. um))
  in
  let w = Fp.sample_weights fp points in
  check_close ~rtol:1e-9 "weights sum to total" 3. (Array.fold_left ( +. ) 0. w);
  Array.iter (fun x -> Alcotest.(check bool) "nonnegative" true (x >= 0.)) w

let test_floorplan_guards () =
  check_raises_invalid "bad die" (fun () ->
      ignore (Fp.make ~width:0. ~height:1. ~total_current:1. []));
  check_raises_invalid "no hotspots, partial uniform" (fun () ->
      ignore (Fp.make ~width:1. ~height:1. ~total_current:1. []));
  (* Fully uniform floorplan without hotspots is fine. *)
  let fp = Fp.make ~uniform_fraction:1. ~width:1. ~height:1. ~total_current:1. [] in
  check_close ~rtol:1e-9 "uniform density" 1. (Fp.demand_at fp ~x:0.5 ~y:0.5)

(* ---------------------------------------------------------------- *)
(* Grid generation                                                   *)

let small_spec =
  {
    Gg.tech = T.ibm_like;
    die_width = 2e-3;
    die_height = 2e-3;
    stripe_counts = [| 24; 18; 10; 6 |];
    pad_every = 4;
    load_fraction = 0.4;
    current_per_net = 0.5;
    bottom_tap_pitch = None;
    voltage_domains = 1;
    seed = 7L;
  }

let test_grid_generation_counts () =
  let g = Gg.generate small_spec in
  let s = N.stats g.Gg.netlist in
  Alcotest.(check bool) "has resistors" true (s.N.resistors > 100);
  Alcotest.(check int) "wires+vias = resistors" s.N.resistors
    (g.Gg.num_wires + g.Gg.num_vias);
  Alcotest.(check int) "loads = current sources" s.N.current_sources g.Gg.num_loads;
  Alcotest.(check int) "pads = voltage sources" s.N.voltage_sources g.Gg.num_pads;
  Alcotest.(check bool) "has pads" true (g.Gg.num_pads > 0);
  Alcotest.(check bool) "has loads" true (g.Gg.num_loads > 0)

let test_grid_estimate_accuracy () =
  let g = Gg.generate small_spec in
  let actual = g.Gg.num_wires + g.Gg.num_vias in
  let est = Gg.estimate_edges small_spec in
  let err =
    Float.abs (float_of_int (est - actual)) /. float_of_int actual
  in
  Alcotest.(check bool)
    (Printf.sprintf "estimate within 12%% (est %d, actual %d)" est actual)
    true (err < 0.12)

let test_grid_determinism () =
  let a = Gg.generate small_spec and b = Gg.generate small_spec in
  Alcotest.(check string) "same netlist" (N.to_string a.Gg.netlist)
    (N.to_string b.Gg.netlist)

let test_grid_nets_disjoint () =
  (* No resistor may bridge Vdd and Vss. *)
  let g = Gg.generate small_spec in
  let net = g.Gg.netlist in
  Array.iter
    (fun e ->
      match e with
      | N.Resistor { pos; neg; _ } -> begin
        match
          ( Hashtbl.find_opt g.Gg.node_net (N.node_name net pos),
            Hashtbl.find_opt g.Gg.node_net (N.node_name net neg) )
        with
        | Some a, Some b ->
          Alcotest.(check bool) "same net" true (a = b)
        | _ -> ()
      end
      | N.Current_source _ | N.Voltage_source _ -> ())
    net.N.elements

let test_grid_solvable () =
  let g = Gg.generate small_spec in
  let sol = Spice.Mna.solve g.Gg.netlist in
  let supply = g.Gg.tech.T.supply_voltage in
  (* All node voltages must lie within [0 - eps, supply + eps]. *)
  Array.iteri
    (fun i v ->
      if Spice.Ibm_format.decode (N.node_name g.Gg.netlist i) <> None then
        Alcotest.(check bool)
          (Printf.sprintf "node %d voltage in range (%.6f)" i v)
          true
          (v >= -1e-9 && v <= supply +. 1e-9))
    sol.Spice.Mna.voltages

let test_grid_ibm_presets_edges () =
  (* Scaled-down presets still track the paper's |E| proportions. *)
  let e1 = Gg.estimate_edges (Gg.ibm_preset ~scale:0.25 Gg.Pg1) in
  let e2 = Gg.estimate_edges (Gg.ibm_preset ~scale:0.25 Gg.Pg2) in
  Alcotest.(check bool) "pg2 > 3x pg1" true (e2 > 3 * e1);
  (* Full-scale estimates match Table II's |E| within 10%. *)
  List.iter
    (fun size ->
      let est = Gg.estimate_edges (Gg.ibm_preset size) in
      let target = Gg.ibm_paper_edges size in
      let err = Float.abs (float_of_int (est - target)) /. float_of_int target in
      Alcotest.(check bool)
        (Printf.sprintf "%s: est %d vs paper %d" (Gg.ibm_size_name size) est target)
        true (err < 0.10))
    [ Gg.Pg1; Gg.Pg2; Gg.Pg3; Gg.Pg6 ]

let test_grid_guards () =
  check_raises_invalid "bad load fraction" (fun () ->
      ignore (Gg.generate { small_spec with Gg.load_fraction = 1.5 }));
  check_raises_invalid "bad pad_every" (fun () ->
      ignore (Gg.generate { small_spec with Gg.pad_every = 0 }));
  check_raises_invalid "scale_spec guard" (fun () ->
      ignore (Gg.scale_spec small_spec 0.))

(* ---------------------------------------------------------------- *)
(* Openpdn                                                           *)

let op_spec =
  {
    Op.tech = T.nangate45;
    die_width = 200. *. um;
    die_height = 200. *. um;
    regions = 2;
    templates = Op.default_templates;
    pad_every = 3;
    load_fraction = 0.5;
    current_per_net = 0.01;
    bottom_tap_pitch = Some (2. *. um);
    seed = 99L;
  }

let test_openpdn_templates_by_demand () =
  let rng = Rng.create 1L in
  let fp =
    Fp.make ~width:op_spec.Op.die_width ~height:op_spec.Op.die_height
      ~total_current:0.01
      [
        {
          Fp.cx = 50. *. um;
          cy = 50. *. um;
          radius = 30. *. um;
          weight = 1.;
        };
      ]
  in
  ignore rng;
  let assignment = Op.assign_templates op_spec fp in
  Alcotest.(check int) "4 regions" 4 (Array.length assignment);
  (* Region (0,0) holds the hotspot: densest template (index 0). *)
  Alcotest.(check int) "hot region densest" 0 assignment.(0);
  (* The opposite corner gets the sparsest. *)
  Alcotest.(check int) "cold region sparsest"
    (Array.length Op.default_templates - 1)
    assignment.(3)

let test_openpdn_synthesizes () =
  let g = Op.synthesize op_spec in
  let s = N.stats g.Gg.netlist in
  Alcotest.(check bool) "nontrivial" true (s.N.resistors > 200);
  Alcotest.(check bool) "has pads" true (g.Gg.num_pads > 0);
  (* And it must be solvable. *)
  let sol = Spice.Mna.solve g.Gg.netlist in
  Alcotest.(check bool) "converged" true
    (sol.Spice.Mna.residual < 1e-6)

let test_openpdn_denser_template_more_edges () =
  let dense_only = [| { Op.name = "dense"; pitch_multiplier = 0.5 } |] in
  let sparse_only = [| { Op.name = "sparse"; pitch_multiplier = 2.0 } |] in
  let gd = Op.synthesize { op_spec with Op.templates = dense_only } in
  let gs = Op.synthesize { op_spec with Op.templates = sparse_only } in
  Alcotest.(check bool) "dense grid has more wires" true
    (gd.Gg.num_wires > gs.Gg.num_wires)

let test_openpdn_circuit_list () =
  Alcotest.(check int) "8 circuits" 8 (List.length Op.table3_circuits);
  let c28 =
    List.filter (fun c -> c.Op.node = Op.N28) Op.table3_circuits
  in
  Alcotest.(check int) "3 at 28nm" 3 (List.length c28)

let test_openpdn_gcd_scale () =
  (* The smallest circuit must land within 2x of its paper edge count. *)
  let gcd = List.hd Op.table3_circuits in
  let g = Op.synthesize_circuit gcd in
  let edges = g.Gg.num_wires + g.Gg.num_vias in
  let ratio = float_of_int edges /. float_of_int gcd.Op.paper_edges in
  Alcotest.(check bool)
    (Printf.sprintf "gcd edges %d vs paper %d" edges gcd.Op.paper_edges)
    true
    (ratio > 0.8 && ratio < 1.25)

(* ---------------------------------------------------------------- *)
(* IR drop                                                           *)

let test_irdrop_analyze () =
  let g = Gg.generate small_spec in
  let a = Ir.analyze g in
  Alcotest.(check bool) "positive vdd drop" true (a.Ir.worst_vdd_drop > 0.);
  Alcotest.(check bool) "positive vss rise" true (a.Ir.worst_vss_rise > 0.);
  Alcotest.(check bool) "worst is max" true
    (a.Ir.worst >= a.Ir.worst_vdd_drop && a.Ir.worst >= a.Ir.worst_vss_rise);
  Alcotest.(check bool) "mean below worst" true (a.Ir.mean_drop <= a.Ir.worst)

let test_irdrop_scaling_linear () =
  let g = Gg.generate small_spec in
  let a1 = Ir.analyze g in
  let doubled =
    { g with Gg.netlist = Ir.scale_loads g.Gg.netlist 2. }
  in
  let a2 = Ir.analyze doubled in
  check_close ~rtol:1e-6 "drop linear in loads" (2. *. a1.Ir.worst) a2.Ir.worst

let test_irdrop_scale_to_target () =
  let g = Gg.generate small_spec in
  let target = 5e-3 in
  let _scaled, a = Ir.scale_to_ir g ~target in
  check_close ~rtol:1e-4 "worst = 5mV" target a.Ir.worst


let test_voltage_domains () =
  let spec3 = { small_spec with Gg.voltage_domains = 3; seed = 19L } in
  let g = Gg.generate spec3 in
  (* Three distinct Vdd pad voltages appear (1.8, 1.62, 1.44). *)
  let voltages = Hashtbl.create 8 in
  Array.iter
    (fun e ->
      match e with
      | N.Voltage_source { volts; _ } when volts > 0. ->
        Hashtbl.replace voltages (Printf.sprintf "%.3f" volts) ()
      | N.Voltage_source _ | N.Resistor _ | N.Current_source _ -> ())
    g.Gg.netlist.N.elements;
  Alcotest.(check int) "three Vdd levels" 3 (Hashtbl.length voltages);
  (* Still solvable, and Vdd nodes never exceed their domain supply. *)
  let sol = Spice.Mna.solve g.Gg.netlist in
  Hashtbl.iter
    (fun name net ->
      match (net, Spice.Mna.node_voltage sol name) with
      | Gg.Vdd, Some v ->
        Alcotest.(check bool)
          (Printf.sprintf "%s below its supply" name)
          true
          (v <= g.Gg.vdd_supply_of name +. 1e-9)
      | _ -> ())
    g.Gg.node_net;
  (* Domains are electrically disjoint: no wire crosses the band
     boundary (all same-layer resistor endpoints share a band). *)
  let die_w_nm = int_of_float (spec3.Gg.die_width /. 1e-9) in
  let band = die_w_nm / 3 in
  Array.iter
    (fun e ->
      match e with
      | N.Resistor { pos; neg; _ } -> begin
        match
          ( Spice.Ibm_format.decode (N.node_name g.Gg.netlist pos),
            Spice.Ibm_format.decode (N.node_name g.Gg.netlist neg) )
        with
        | Some a, Some b ->
          let band_of (c : Spice.Ibm_format.coords) =
            min 2 (c.Spice.Ibm_format.x / band)
          in
          Alcotest.(check bool) "no cross-band wires" true
            (band_of a = band_of b)
        | _ -> ()
      end
      | N.Current_source _ | N.Voltage_source _ -> ())
    g.Gg.netlist.N.elements

let suites =
  [
    ( "pdn.tech",
      [
        case "presets well-formed" test_tech_presets;
        case "resistance math" test_tech_resistance;
        case "guards" test_tech_guards;
      ] );
    ( "pdn.floorplan",
      [
        case "hotspot demand" test_floorplan_normalization;
        case "sample weights" test_floorplan_sample_weights;
        case "guards" test_floorplan_guards;
      ] );
    ( "pdn.grid_gen",
      [
        case "counts consistent" test_grid_generation_counts;
        case "edge estimate" test_grid_estimate_accuracy;
        case "deterministic by seed" test_grid_determinism;
        case "nets stay disjoint" test_grid_nets_disjoint;
        case "solvable, voltages in range" test_grid_solvable;
        case "ibm presets match Table II |E|" test_grid_ibm_presets_edges;
        case "voltage domains" test_voltage_domains;
        case "guards" test_grid_guards;
      ] );
    ( "pdn.openpdn",
      [
        case "templates follow demand" test_openpdn_templates_by_demand;
        case "synthesizes solvable grids" test_openpdn_synthesizes;
        case "denser template => more wires" test_openpdn_denser_template_more_edges;
        case "Table III circuit list" test_openpdn_circuit_list;
        case "gcd lands near paper scale" test_openpdn_gcd_scale;
      ] );
    ( "pdn.irdrop",
      [
        case "analyze" test_irdrop_analyze;
        case "linearity" test_irdrop_scaling_linear;
        case "scale to 5mV" test_irdrop_scale_to_target;
      ] );
  ]
