open T_helpers
module Tr = Obs.Trace
module Pf = Obs.Profile
module Mx = Obs.Metrics
module Lg = Obs.Log
module Jin = Emflow.Json_in
module Jout = Emflow.Json_out

(* ---------------------------------------------------------------- *)
(* Folded aggregation and export: deterministic on synthetic stacks  *)

let synthetic_stacks =
  [
    (0, [ "root"; "child" ]);
    (0, [ "root" ]);
    (1, [ "root"; "child" ]);
    (0, [ "root"; "child" ]);
    (0, []);
    (* empty stacks are idle observations, dropped *)
    (1, [ "other" ]);
  ]

let test_profile_of_stacks () =
  let p = Pf.profile_of_stacks synthetic_stacks in
  Alcotest.(check int) "empty stacks ignored" 5 p.Pf.total_samples;
  Alcotest.(check int) "distinct (track, stack) keys" 4
    (List.length p.Pf.samples);
  let counts =
    List.map (fun s -> (s.Pf.smp_track, s.Pf.smp_stack, s.Pf.smp_count)) p.Pf.samples
  in
  Alcotest.(check bool) "sorted by track then stack with summed counts" true
    (counts
    = [
        (0, [ "root" ], 1); (0, [ "root"; "child" ], 2); (1, [ "other" ], 1);
        (1, [ "root"; "child" ], 1);
      ])

let test_folded_output () =
  let p = Pf.profile_of_stacks synthetic_stacks in
  let folded = Pf.to_folded ~track_names:[ (0, "main"); (1, "worker-1") ] p in
  Alcotest.(check string) "folded lines, lanes resolved"
    "main;root 1\nmain;root;child 2\nworker-1;other 1\nworker-1;root;child 1\n"
    folded;
  (* Unknown tracks fall back to track-N. *)
  let fallback = Pf.to_folded (Pf.profile_of_stacks [ (7, [ "x" ]) ]) in
  Alcotest.(check string) "track fallback" "track-7;x 1\n" fallback

let test_folded_permutation_invariant =
  qcheck ~count:50 "folded output is a function of the observation multiset"
    QCheck2.Gen.(list_size (int_range 0 30) (int_range 0 5))
    (fun picks ->
      (* Build an observation list by indexing a fixed universe, then
         compare against the same multiset in sorted order. *)
      let universe =
        [|
          (0, [ "a" ]); (0, [ "a"; "b" ]); (0, [ "a"; "c" ]); (1, [ "a" ]);
          (1, [ "d"; "e" ]); (2, [ "f" ]);
        |]
      in
      let obs = List.map (fun i -> universe.(i)) picks in
      let sorted = List.sort compare obs in
      Pf.to_folded (Pf.profile_of_stacks obs)
      = Pf.to_folded (Pf.profile_of_stacks sorted))

(* ---------------------------------------------------------------- *)
(* Exact attribution invariants                                      *)

(* A busy loop long enough for span durations to be nonzero at the
   clock's resolution, so containment inequalities are meaningful. *)
let spin () =
  let x = ref 0. in
  for i = 1 to 20_000 do
    x := !x +. float_of_int i
  done;
  ignore (Sys.opaque_identity !x)

let nested_trace () =
  let t = Tr.create () in
  Tr.with_enabled t (fun () ->
      Tr.with_span "root" (fun () ->
          Tr.with_span "solve" (fun () ->
              Tr.with_span "cg" (fun () -> spin ());
              Tr.with_span "cg" (fun () -> spin ()));
          Tr.with_span "classify" (fun () -> spin ()));
      Tr.with_span "report" (fun () -> spin ()));
  t

let find_path paths p =
  match List.find_opt (fun (h : Pf.hot_path) -> h.Pf.hp_path = p) paths with
  | Some h -> h
  | None -> Alcotest.failf "path %s missing" (Pf.path_to_string p)

let test_attribution_invariants () =
  let t = nested_trace () in
  let paths = Pf.attribute t in
  Alcotest.(check int) "five distinct paths" 5 (List.length paths);
  (* Self within total, everywhere. *)
  List.iter
    (fun (h : Pf.hot_path) ->
      Alcotest.(check bool)
        (Pf.path_to_string h.Pf.hp_path ^ ": 0 <= self <= total")
        true
        (h.Pf.hp_self_us >= 0. && h.Pf.hp_self_us <= h.Pf.hp_total_us +. 1e-9);
      Alcotest.(check bool)
        (Pf.path_to_string h.Pf.hp_path ^ ": self alloc within alloc")
        true
        (h.Pf.hp_self_alloc_words >= 0.
        && h.Pf.hp_self_alloc_words <= h.Pf.hp_alloc_words +. 1e-9))
    paths;
  (* Direct children are contained in their parent. *)
  let total p = (find_path paths p).Pf.hp_total_us in
  Alcotest.(check bool) "children of root contained" true
    (total [ "root"; "solve" ] +. total [ "root"; "classify" ]
    <= total [ "root" ] +. 1e-9);
  Alcotest.(check bool) "children of solve contained" true
    (total [ "root"; "solve"; "cg" ] <= total [ "root"; "solve" ] +. 1e-9);
  (* Self-times telescope: their sum is exactly the root wall time
     (same float additions, so the tolerance is pure rounding). *)
  let self_sum =
    List.fold_left (fun acc (h : Pf.hot_path) -> acc +. h.Pf.hp_self_us) 0. paths
  in
  let wall = Pf.span_wall_us t in
  Alcotest.(check bool) "wall time positive" true (wall > 0.);
  check_close ~rtol:1e-9 "sum of self == wall of roots" wall self_sum;
  (* The cg path aggregated both spans. *)
  Alcotest.(check int) "cg count" 2 (find_path paths [ "root"; "solve"; "cg" ]).Pf.hp_count;
  (* Sorted by descending self-time. *)
  let selfs = List.map (fun (h : Pf.hot_path) -> h.Pf.hp_self_us) paths in
  Alcotest.(check bool) "sorted by self desc" true
    (List.sort (fun a b -> Float.compare b a) selfs = selfs)

let test_attribution_sample_counts () =
  let t = nested_trace () in
  let p =
    Pf.profile_of_stacks
      [
        (0, [ "root"; "solve"; "cg" ]); (0, [ "root"; "solve"; "cg" ]);
        (0, [ "root" ]); (3, [ "root"; "solve"; "cg" ]);
        (0, [ "never"; "traced" ]);
      ]
  in
  let paths = Pf.attribute ~profile:p t in
  Alcotest.(check int) "samples merged across lanes" 3
    (find_path paths [ "root"; "solve"; "cg" ]).Pf.hp_samples;
  Alcotest.(check int) "root samples" 1 (find_path paths [ "root" ]).Pf.hp_samples;
  Alcotest.(check int) "unsampled path" 0
    (find_path paths [ "root"; "classify" ]).Pf.hp_samples

(* ---------------------------------------------------------------- *)
(* Speedscope export: parse back and validate the structure          *)

let get = function Some v -> v | None -> Alcotest.fail "missing JSON member"

let validate_speedscope json_text =
  let doc = Jin.parse_exn json_text in
  Alcotest.(check (option string))
    "$schema" (Some "https://www.speedscope.app/file-format-schema.json")
    (Option.bind (Jin.member "$schema" doc) Jin.string_value);
  let frames =
    get
      (Option.bind (Jin.member "shared" doc) (fun s ->
           Option.bind (Jin.member "frames" s) Jin.list_value))
  in
  List.iter
    (fun f ->
      match Option.bind (Jin.member "name" f) Jin.string_value with
      | Some _ -> ()
      | None -> Alcotest.fail "frame without a name")
    frames;
  let n_frames = List.length frames in
  let profiles = get (Option.bind (Jin.member "profiles" doc) Jin.list_value) in
  Alcotest.(check bool) "at least one profile" true (profiles <> []);
  List.iter
    (fun p ->
      Alcotest.(check (option string))
        "sampled type" (Some "sampled")
        (Option.bind (Jin.member "type" p) Jin.string_value);
      let samples = get (Option.bind (Jin.member "samples" p) Jin.list_value) in
      let weights = get (Option.bind (Jin.member "weights" p) Jin.list_value) in
      Alcotest.(check int) "samples and weights same length"
        (List.length samples) (List.length weights);
      List.iter
        (fun stack ->
          List.iter
            (fun idx ->
              let i = int_of_float (get (Jin.number idx)) in
              Alcotest.(check bool) "frame index in range" true
                (i >= 0 && i < n_frames))
            (get (Jin.list_value stack)))
        samples;
      let weight_sum =
        List.fold_left (fun acc w -> acc +. get (Jin.number w)) 0. weights
      in
      Alcotest.(check (float 0.)) "startValue is 0" 0.
        (get (Option.bind (Jin.member "startValue" p) Jin.number));
      Alcotest.(check (float 1e-9)) "endValue is the weight sum" weight_sum
        (get (Option.bind (Jin.member "endValue" p) Jin.number)))
    profiles;
  (frames, profiles)

let test_speedscope_roundtrip () =
  let p = Pf.profile_of_stacks synthetic_stacks in
  let json =
    Pf.to_speedscope ~name:"unit" ~track_names:[ (0, "main"); (1, "w1") ] p
  in
  Alcotest.(check bool) "well-formed JSON" true (T_obs.json_accepts json);
  let frames, profiles = validate_speedscope json in
  Alcotest.(check int) "three distinct frames" 3 (List.length frames);
  Alcotest.(check int) "one profile per track" 2 (List.length profiles);
  let names =
    List.map
      (fun p -> get (Option.bind (Jin.member "name" p) Jin.string_value))
      profiles
  in
  Alcotest.(check (list string)) "lane names" [ "main"; "w1" ] names

let test_speedscope_empty_profile () =
  let p = Pf.profile_of_stacks [] in
  let json = Pf.to_speedscope p in
  let _, profiles = validate_speedscope json in
  (* An idle run still exports a loadable single empty lane. *)
  Alcotest.(check int) "one empty profile" 1 (List.length profiles)

let test_speedscope_hostile_names () =
  let p =
    Pf.profile_of_stacks
      [ (0, [ "bad\xffutf"; "ctrl\x01\"quote\\" ]); (0, [ "λ→∞" ]) ]
  in
  let json = Pf.to_speedscope ~name:"hostile \xfe name" p in
  Alcotest.(check bool) "hostile export is well-formed JSON" true
    (T_obs.json_accepts json);
  ignore (validate_speedscope json)

(* ---------------------------------------------------------------- *)
(* Stack snapshots and the live sampler                              *)

let test_stack_snapshots () =
  Alcotest.(check (list (pair int (list string))))
    "no snapshots without tracing" [] (Tr.stack_snapshots ());
  let t = Tr.create () in
  Tr.with_enabled t (fun () ->
      Tr.with_span "outer" (fun () ->
          Tr.with_span "inner" (fun () ->
              match Tr.stack_snapshots () with
              | [ (track, stack) ] ->
                Alcotest.(check int) "own track" (Tr.track ()) track;
                Alcotest.(check (list string))
                  "root-first stack" [ "outer"; "inner" ] stack
              | l -> Alcotest.failf "expected 1 snapshot, got %d" (List.length l));
          Alcotest.(check (list (pair int (list string))))
            "inner popped"
            [ (Tr.track (), [ "outer" ]) ]
            (Tr.stack_snapshots ())))

let test_sampler_guards () =
  check_raises_invalid "zero rate" (fun () -> Pf.start ~rate_hz:0. ());
  check_raises_invalid "negative rate" (fun () -> Pf.start ~rate_hz:(-1.) ());
  check_raises_invalid "nan rate" (fun () -> Pf.start ~rate_hz:Float.nan ());
  let s = Pf.start ~rate_hz:2000. () in
  Alcotest.(check bool) "running" true (Pf.is_running ());
  Alcotest.(check (float 0.)) "rate" 2000. (Pf.rate s);
  check_raises_invalid "double start" (fun () -> Pf.start ());
  let p = Pf.stop s in
  Alcotest.(check bool) "stopped" false (Pf.is_running ());
  Alcotest.(check bool) "ticked at least once" true (p.Pf.ticks >= 1);
  Alcotest.(check int) "nothing traced, nothing sampled" 0 p.Pf.total_samples

let test_sampler_live () =
  let t = Tr.create () in
  let p =
    Tr.with_enabled t (fun () ->
        let s = Pf.start ~rate_hz:1000. () in
        (* Keep a recognizable stack open long enough to be observed on
           a loaded machine: 1000 Hz over ~80ms of work. *)
        Tr.with_span "t_profile.busy" (fun () ->
            let stop_at = Unix.gettimeofday () +. 0.08 in
            while Unix.gettimeofday () < stop_at do
              spin ()
            done);
        Pf.stop s)
  in
  Alcotest.(check bool) "ticker ticked" true (p.Pf.ticks >= 1);
  Alcotest.(check bool) "sampling window measured" true (p.Pf.duration_us > 0.);
  (* Every observed stack must be the one we held open. *)
  List.iter
    (fun s ->
      Alcotest.(check (list string))
        "observed the open span" [ "t_profile.busy" ] s.Pf.smp_stack)
    p.Pf.samples;
  (* The telemetry JSON carries the profile summary and hot paths. *)
  let json =
    Tr.with_enabled t (fun () ->
        Jout.to_string (Jout.of_telemetry ~top:5 ~profile:p ()))
  in
  Alcotest.(check bool) "telemetry JSON well-formed" true
    (T_obs.json_accepts json);
  let doc = Jin.parse_exn json in
  let telemetry_profile = get (Jin.member "profile" doc) in
  Alcotest.(check (option (float 0.)))
    "profile rate surfaced" (Some 1000.)
    (Option.bind (Jin.member "rate_hz" telemetry_profile) Jin.number);
  let hot = get (Option.bind (Jin.member "hot_paths" doc) Jin.list_value) in
  Alcotest.(check bool) "hot paths bounded by top" true (List.length hot <= 5)

(* ---------------------------------------------------------------- *)
(* Span-buffer cap                                                   *)

let test_trace_capacity_cap () =
  check_raises_invalid "capacity must be positive" (fun () ->
      ignore (Tr.create ~capacity:0 ()));
  Alcotest.(check int) "default capacity is generous" 1_000_000
    (Tr.capacity (Tr.create ()));
  let t = Tr.create ~capacity:3 () in
  let log_buf = Buffer.create 256 in
  let sink = Lg.create ~min_level:Lg.Warn ~text:(Lg.Buffer log_buf) () in
  let before =
    Mx.with_enabled true (fun () ->
        match
          List.find_opt
            (fun (s : Mx.sample) -> s.Mx.s_name = "obs_trace_dropped_spans_total")
            (Mx.snapshot ())
        with
        | Some s -> s.Mx.s_value
        | None -> 0.)
  in
  Mx.with_enabled true (fun () ->
      Lg.with_enabled sink (fun () ->
          Tr.with_enabled t (fun () ->
              for i = 1 to 8 do
                Tr.with_span (Printf.sprintf "s%d" i) (fun () -> ())
              done)));
  Alcotest.(check int) "buffer holds exactly capacity" 3 (Tr.num_events t);
  Alcotest.(check int) "drops counted" 5 (Tr.dropped_spans t);
  (* Earliest completions survive; later ones drop. *)
  Alcotest.(check (list string))
    "first-in kept"
    [ "s1"; "s2"; "s3" ]
    (List.map (fun (e : Tr.event) -> e.Tr.name) (Tr.events t));
  let after =
    Mx.with_enabled true (fun () ->
        match
          List.find_opt
            (fun (s : Mx.sample) -> s.Mx.s_name = "obs_trace_dropped_spans_total")
            (Mx.snapshot ())
        with
        | Some s -> s.Mx.s_value
        | None -> 0.)
  in
  Alcotest.(check (float 0.)) "drop metric incremented" 5. (after -. before);
  (* One warning, not five. *)
  let warnings =
    String.split_on_char '\n' (Buffer.contents log_buf)
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "warn-once on first drop" 1 (List.length warnings);
  Alcotest.(check bool) "warning names the condition" true
    (T_obs.contains (List.hd warnings) "trace span buffer full")

let test_trace_cap_keeps_sampling () =
  (* A full buffer stops recording but not stack publication: the
     profiler keeps seeing live stacks. *)
  let t = Tr.create ~capacity:1 () in
  Tr.with_enabled t (fun () ->
      Tr.with_span "a" (fun () -> ());
      Tr.with_span "b" (fun () ->
          match Tr.stack_snapshots () with
          | [ (_, stack) ] ->
            Alcotest.(check (list string)) "stack still published" [ "b" ] stack
          | l -> Alcotest.failf "expected 1 snapshot, got %d" (List.length l)));
  Alcotest.(check int) "one span kept" 1 (Tr.num_events t);
  Alcotest.(check int) "one span dropped" 1 (Tr.dropped_spans t)

let suites =
  [
    ( "profile.folded",
      [
        case "aggregation over synthetic stacks" test_profile_of_stacks;
        case "folded output and lane naming" test_folded_output;
        test_folded_permutation_invariant;
      ] );
    ( "profile.attribute",
      [
        case "self/total invariants and telescoping" test_attribution_invariants;
        case "sample counts join on exact path" test_attribution_sample_counts;
      ] );
    ( "profile.speedscope",
      [
        case "export parses and validates" test_speedscope_roundtrip;
        case "empty profile still loads" test_speedscope_empty_profile;
        case "hostile frame names sanitize" test_speedscope_hostile_names;
      ] );
    ( "profile.sampler",
      [
        case "published stacks snapshot" test_stack_snapshots;
        case "start/stop guards" test_sampler_guards;
        case "live sampling smoke" test_sampler_live;
      ] );
    ( "profile.cap",
      [
        case "span buffer cap: count, metric, warn-once" test_trace_capacity_cap;
        case "cap leaves stack publication alive" test_trace_cap_keeps_sampling;
      ] );
  ]
