(* Live-telemetry HTTP server (Obs.Serve): endpoint correctness, hostile
   clients (oversized, malformed, stalled), and result-neutrality while
   a solve is being scraped. Every test binds an ephemeral port. *)

open T_helpers
module Sv = Obs.Serve
module Rt = Obs.Runtime
module Mx = Obs.Metrics
module Flow = Emflow.Em_flow

(* ---------------------------------------------------------------- *)
(* Minimal blocking HTTP client                                      *)

let connect port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
  | () -> ()
  | exception e ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    raise e);
  sock

let recv_all sock =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  (try
     let rec go () =
       let n = Unix.read sock chunk 0 4096 in
       if n > 0 then begin
         Buffer.add_subbytes buf chunk 0 n;
         go ()
       end
     in
     go ()
   with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
  Buffer.contents buf

type response = {
  status : int;
  headers : (string * string) list; (* keys lowercased *)
  body : string;
}

let parse_response raw =
  let n = String.length raw in
  let sep =
    let rec find i =
      if i + 3 >= n then
        Alcotest.failf "no header/body separator in %S" raw
      else if
        raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
        && raw.[i + 3] = '\n'
      then i
      else find (i + 1)
    in
    find 0
  in
  let head_lines =
    String.sub raw 0 sep |> String.split_on_char '\n'
    |> List.map (fun l ->
           if l <> "" && l.[String.length l - 1] = '\r' then
             String.sub l 0 (String.length l - 1)
           else l)
  in
  match head_lines with
  | [] -> Alcotest.failf "empty response head in %S" raw
  | status_line :: header_lines ->
    let status =
      match String.split_on_char ' ' status_line with
      | "HTTP/1.1" :: code :: _ -> begin
        match int_of_string_opt code with
        | Some c -> c
        | None -> Alcotest.failf "bad status code in %S" status_line
      end
      | _ -> Alcotest.failf "bad status line %S" status_line
    in
    let headers =
      List.filter_map
        (fun l ->
          match String.index_opt l ':' with
          | None -> None
          | Some i ->
            Some
              ( String.lowercase_ascii (String.sub l 0 i),
                String.trim (String.sub l (i + 1) (String.length l - i - 1)) ))
        header_lines
    in
    { status; headers; body = String.sub raw (sep + 4) (n - sep - 4) }

let http_raw ~port raw =
  let sock = connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      ignore (Unix.write_substring sock raw 0 (String.length raw));
      parse_response (recv_all sock))

let http_get ?(meth = "GET") ~port path =
  http_raw ~port (Printf.sprintf "%s %s HTTP/1.1\r\nHost: t\r\n\r\n" meth path)

let with_server ?max_request_bytes ?read_timeout_s f =
  let server = Sv.start ?max_request_bytes ?read_timeout_s ~port:0 () in
  Fun.protect ~finally:(fun () -> Sv.stop server) (fun () -> f server)

(* ---------------------------------------------------------------- *)
(* Endpoints                                                         *)

let test_metrics_endpoint () =
  with_server (fun server ->
      let port = Sv.port server in
      Alcotest.(check bool) "ephemeral port resolved" true (port > 0);
      Alcotest.(check string) "bound address" "127.0.0.1" (Sv.addr server);
      let c = Mx.counter ~help:"serve test probe" "t_serve_probe_total" in
      Mx.with_enabled true (fun () ->
          Mx.inc c;
          Rt.sample_now ();
          let r = http_get ~port "/metrics" in
          Alcotest.(check int) "status" 200 r.status;
          Alcotest.(check (option string))
            "prometheus content type"
            (Some "text/plain; version=0.0.4")
            (List.assoc_opt "content-type" r.headers);
          Alcotest.(check (option string)) "closes the connection"
            (Some "close")
            (List.assoc_opt "connection" r.headers);
          Alcotest.(check (option string)) "content length matches"
            (Some (string_of_int (String.length r.body)))
            (List.assoc_opt "content-length" r.headers);
          List.iter
            (fun needle ->
              Alcotest.(check bool) ("exposition has " ^ needle) true
                (T_obs.contains r.body needle))
            [
              "t_serve_probe_total 1"; "process_uptime_seconds";
              "ocaml_gc_heap_words"; "em_run_structures_total";
            ];
          (* Query strings are stripped, as Prometheus sends them. *)
          Alcotest.(check int) "query string accepted" 200
            (http_get ~port "/metrics?format=text").status);
      Alcotest.(check bool) "requests counted" true
        (Sv.requests_served server >= 2))

let test_healthz_endpoint () =
  with_server (fun server ->
      let port = Sv.port server in
      Rt.reset ();
      Rt.with_enabled true (fun () ->
          Rt.set_phase "analyze";
          Rt.set_structures_total 5;
          Rt.structure_done ();
          Rt.structure_done ();
          let r = http_get ~port "/healthz" in
          Alcotest.(check int) "status" 200 r.status;
          Alcotest.(check (option string))
            "json content type" (Some "application/json")
            (List.assoc_opt "content-type" r.headers);
          Alcotest.(check bool) "body is valid JSON" true
            (T_obs.json_accepts (String.trim r.body));
          List.iter
            (fun needle ->
              Alcotest.(check bool) ("healthz has " ^ needle) true
                (T_obs.contains r.body needle))
            [
              {|"status":"ok"|}; {|"phase":"analyze"|};
              {|"structures_done":2|}; {|"structures_total":5|};
              {|"uptime_s":|}; {|"run_id":null|}; {|"audit_enabled":false|};
            ];
          (* A recording in progress surfaces its ledger run id. *)
          Rt.set_run_id (Some "ledger-run-1");
          Alcotest.(check bool) "healthz carries the live run id" true
            (T_obs.contains (http_get ~port "/healthz").body
               {|"run_id":"ledger-run-1"|});
          (* An installed audit provider flips the healthz flag. *)
          Rt.set_audit_provider (Some (fun () -> "{}"));
          Fun.protect
            ~finally:(fun () -> Rt.set_audit_provider None)
            (fun () ->
              Alcotest.(check bool) "healthz reflects a live audit" true
                (T_obs.contains (http_get ~port "/healthz").body
                   {|"audit_enabled":true|})));
      Rt.reset ())

let test_snapshot_endpoints () =
  (* /trace, /profile and /flight must answer valid documents even with
     nothing recording — the scrape-anytime contract. *)
  with_server (fun server ->
      let port = Sv.port server in
      let tr = http_get ~port "/trace" in
      Alcotest.(check int) "trace status" 200 tr.status;
      Alcotest.(check bool) "trace is valid JSON" true
        (T_obs.json_accepts (String.trim tr.body));
      Alcotest.(check bool) "trace shape" true
        (T_obs.contains tr.body {|"traceEvents"|});
      let pr = http_get ~port "/profile" in
      Alcotest.(check int) "profile status" 200 pr.status;
      Alcotest.(check bool) "profile is valid JSON" true
        (T_obs.json_accepts (String.trim pr.body));
      Alcotest.(check bool) "speedscope shape" true
        (T_obs.contains pr.body {|"$schema"|});
      let fl = http_get ~port "/flight" in
      Alcotest.(check int) "flight status" 200 fl.status;
      Alcotest.(check (option string))
        "flight content type" (Some "application/x-ndjson")
        (List.assoc_opt "content-type" fl.headers))

let test_audit_endpoint () =
  with_server (fun server ->
      let port = Sv.port server in
      (* No provider installed: a valid "disabled" document, not a 404 —
         the scrape-anytime contract. *)
      Rt.set_audit_provider None;
      let r = http_get ~port "/audit" in
      Alcotest.(check int) "status without provider" 200 r.status;
      Alcotest.(check (option string))
        "json content type" (Some "application/json")
        (List.assoc_opt "content-type" r.headers);
      Alcotest.(check string) "disabled document" {|{"enabled":false}|}
        (String.trim r.body);
      (* An installed provider's document is served verbatim... *)
      Rt.set_audit_provider (Some (fun () -> {|{"enabled":true,"probe":42}|}));
      Fun.protect
        ~finally:(fun () -> Rt.set_audit_provider None)
        (fun () ->
          let r = http_get ~port "/audit" in
          Alcotest.(check int) "status with provider" 200 r.status;
          Alcotest.(check string) "provider document"
            {|{"enabled":true,"probe":42}|}
            (String.trim r.body));
      (* ...and clearing it restores the disabled document. *)
      Alcotest.(check string) "cleared provider" {|{"enabled":false}|}
        (String.trim (http_get ~port "/audit").body);
      (* The real aggregate renders valid JSON through the endpoint. *)
      Em_core.Audit.Live.reset ~tol:1e-9;
      Rt.set_audit_provider (Some Em_core.Audit.Live.to_json);
      Fun.protect
        ~finally:(fun () -> Rt.set_audit_provider None)
        (fun () ->
          let r = http_get ~port "/audit" in
          Alcotest.(check bool) "live aggregate is valid JSON" true
            (T_obs.json_accepts (String.trim r.body));
          List.iter
            (fun needle ->
              Alcotest.(check bool) ("live aggregate has " ^ needle) true
                (T_obs.contains r.body needle))
            [
              {|"enabled":true|}; {|"structures_audited":0|}; {|"violations":0|};
            ]))

let test_runs_endpoint () =
  with_server (fun server ->
      let port = Sv.port server in
      (* Same provider contract as /audit: a valid "disabled" document
         until --record-run installs a renderer. *)
      Rt.set_runs_provider None;
      let r = http_get ~port "/runs" in
      Alcotest.(check int) "status without provider" 200 r.status;
      Alcotest.(check (option string))
        "json content type" (Some "application/json")
        (List.assoc_opt "content-type" r.headers);
      Alcotest.(check string) "disabled document" {|{"enabled":false}|}
        (String.trim r.body);
      Rt.set_runs_provider
        (Some (fun () -> {|{"enabled":true,"runs":3,"run_id":"abc"}|}));
      Fun.protect
        ~finally:(fun () -> Rt.set_runs_provider None)
        (fun () ->
          Alcotest.(check string) "provider document served verbatim"
            {|{"enabled":true,"runs":3,"run_id":"abc"}|}
            (String.trim (http_get ~port "/runs").body));
      Alcotest.(check string) "cleared provider" {|{"enabled":false}|}
        (String.trim (http_get ~port "/runs").body))

(* ---------------------------------------------------------------- *)
(* Hostile clients                                                   *)

let test_not_found_and_bad_method () =
  with_server (fun server ->
      let port = Sv.port server in
      let r = http_get ~port "/nope" in
      Alcotest.(check int) "unknown path" 404 r.status;
      let r = http_get ~meth:"POST" ~port "/metrics" in
      Alcotest.(check int) "non-GET" 405 r.status;
      Alcotest.(check (option string)) "Allow advertises GET" (Some "GET")
        (List.assoc_opt "allow" r.headers);
      let r = http_raw ~port "complete garbage\r\n\r\n" in
      Alcotest.(check int) "malformed request line" 400 r.status;
      (* The listener survived all of it. *)
      Alcotest.(check int) "still serving" 200
        (http_get ~port "/healthz").status)

let test_oversized_request_line () =
  with_server ~max_request_bytes:64 (fun server ->
      let port = Sv.port server in
      let r = http_get ~port ("/" ^ String.make 200 'a') in
      Alcotest.(check int) "oversized request line" 400 r.status;
      (* Oversized *headers* after a complete request line are forgiven:
         the bound protects the parser, not well-behaved clients with
         chatty proxies. *)
      let r =
        http_raw ~port
          (Printf.sprintf "GET /healthz HTTP/1.1\r\nX-Padding: %s\r\n\r\n"
             (String.make 300 'p'))
      in
      Alcotest.(check int) "oversized headers forgiven" 200 r.status;
      Alcotest.(check int) "still serving" 200
        (http_get ~port "/healthz").status)

let test_slow_client_times_out () =
  with_server ~read_timeout_s:0.2 (fun server ->
      let port = Sv.port server in
      (* Send a partial request line and stall: the receive timeout must
         answer 408 rather than wedge the sequential listener. *)
      let sock = connect port in
      let r =
        Fun.protect
          ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
          (fun () ->
            ignore (Unix.write_substring sock "GET /met" 0 8);
            parse_response (recv_all sock))
      in
      Alcotest.(check int) "stalled client gets 408" 408 r.status;
      (* A connection that sends nothing at all gets the same. *)
      let sock = connect port in
      let raw =
        Fun.protect
          ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
          (fun () -> recv_all sock)
      in
      Alcotest.(check bool) "silent client answered or dropped" true
        (raw = "" || (parse_response raw).status = 408);
      Alcotest.(check int) "listener not wedged" 200
        (http_get ~port "/metrics").status)

let test_stop_idempotent () =
  let server = Sv.start ~port:0 () in
  let port = Sv.port server in
  Alcotest.(check int) "serves before stop" 200
    (http_get ~port "/healthz").status;
  Sv.stop server;
  Sv.stop server;
  (* The port is released: a connect must be refused, not serviced. *)
  match connect port with
  | sock ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    (* A TCP self-connect artifact can accept; what matters is nobody
       answers HTTP. Binding the port again must succeed either way. *)
    let server2 = Sv.start ~port () in
    Sv.stop server2
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
    let server2 = Sv.start ~port () in
    Sv.stop server2

(* ---------------------------------------------------------------- *)
(* Scraping a live solve                                             *)

let test_concurrent_scrapes_during_solve () =
  let compacts, clean = Lazy.force T_obs.equiv_fixture in
  with_server (fun server ->
      let port = Sv.port server in
      let solving = Atomic.make true in
      let worker =
        Domain.spawn (fun () ->
            Fun.protect
              ~finally:(fun () -> Atomic.set solving false)
              (fun () ->
                Rt.with_enabled true (fun () ->
                    Mx.with_enabled true (fun () ->
                        Flow.run_on_compact ~jobs:2 compacts))))
      in
      (* Hammer the endpoints while the worker solves; at least one
         scrape of each, more while the solve lasts. *)
      let scrapes = ref 0 in
      let scrape_round () =
        List.iter
          (fun path ->
            let r = http_get ~port path in
            Alcotest.(check int) (path ^ " mid-solve") 200 r.status;
            incr scrapes)
          [ "/metrics"; "/healthz" ]
      in
      scrape_round ();
      while Atomic.get solving do
        scrape_round ()
      done;
      let scraped = Domain.join worker in
      Alcotest.(check bool) "scraped at least twice" true (!scrapes >= 2);
      Alcotest.(check bool) "confusion counts identical" true
        (clean.Flow.counts = scraped.Flow.counts);
      T_obs.check_segments_bit_identical clean.Flow.segments
        scraped.Flow.segments)

let test_scrape_equivalence =
  qcheck ~count:4
    "serving + monitor + scrapes leave analysis results bit-identical"
    QCheck2.Gen.(int_range 1 4)
    (fun jobs ->
      let compacts, clean = Lazy.force T_obs.equiv_fixture in
      let server = Sv.start ~port:0 () in
      let monitor =
        if Rt.is_running () then None else Some (Rt.start ~period_s:0.02 ())
      in
      let result =
        Fun.protect
          ~finally:(fun () ->
            Option.iter Rt.stop monitor;
            Sv.stop server;
            Rt.reset ())
          (fun () ->
            Rt.with_enabled true (fun () ->
                Mx.with_enabled true (fun () ->
                    let r = Flow.run_on_compact ~jobs compacts in
                    let port = Sv.port server in
                    Alcotest.(check int) "post-run scrape" 200
                      (http_get ~port "/metrics").status;
                    Alcotest.(check int) "post-run health" 200
                      (http_get ~port "/healthz").status;
                    r)))
      in
      Alcotest.(check bool) "confusion counts identical" true
        (clean.Flow.counts = result.Flow.counts);
      T_obs.check_segments_bit_identical clean.Flow.segments
        result.Flow.segments;
      true)

let suites =
  [
    ( "serve.endpoints",
      [
        case "/metrics exposition and headers" test_metrics_endpoint;
        case "/healthz live run state" test_healthz_endpoint;
        case "/trace /profile /flight snapshots" test_snapshot_endpoints;
        case "/audit provider contract" test_audit_endpoint;
        case "/runs provider contract" test_runs_endpoint;
      ] );
    ( "serve.hostile",
      [
        case "404, 405 and malformed lines" test_not_found_and_bad_method;
        case "oversized request line bounded" test_oversized_request_line;
        case "stalled client times out" test_slow_client_times_out;
        case "stop is graceful and idempotent" test_stop_idempotent;
      ] );
    ( "serve.equivalence",
      [
        case "concurrent scrapes during a solve"
          test_concurrent_scrapes_during_solve;
        test_scrape_equivalence;
      ] );
  ]
