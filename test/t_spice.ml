open T_helpers
module N = Spice.Netlist
module P = Spice.Parser
module Ibm = Spice.Ibm_format
module Mna = Spice.Mna

(* ---------------------------------------------------------------- *)
(* Netlist builder                                                   *)

let test_builder_interning () =
  let b = N.Builder.create () in
  let a = N.Builder.node b "n1_0_0" in
  let a' = N.Builder.node b "n1_0_0" in
  let c = N.Builder.node b "n1_5_0" in
  Alcotest.(check int) "idempotent" a a';
  Alcotest.(check bool) "distinct" true (a <> c);
  Alcotest.(check int) "count" 2 (N.Builder.num_nodes b)

let test_builder_elements () =
  let b = N.Builder.create ~title:"t" () in
  N.Builder.add_resistor b "a" "b" 2.5;
  N.Builder.add_current_source b "a" "0" 1e-3;
  N.Builder.add_voltage_source b "c" "0" 1.8;
  let net = N.Builder.finish b in
  let s = N.stats net in
  Alcotest.(check int) "nodes" 4 s.N.nodes;
  Alcotest.(check int) "resistors" 1 s.N.resistors;
  Alcotest.(check int) "isrc" 1 s.N.current_sources;
  Alcotest.(check int) "vsrc" 1 s.N.voltage_sources;
  Alcotest.(check bool) "ground detected" true (net.N.ground <> None);
  check_raises_invalid "negative R" (fun () ->
      N.Builder.add_resistor b "a" "b" (-1.))

let test_netlist_roundtrip () =
  let b = N.Builder.create ~title:"roundtrip" () in
  N.Builder.add_resistor b ~name:"R1" "n1_0_0" "n1_100_0" 0.5;
  N.Builder.add_resistor b ~name:"R2" "n1_100_0" "n1_200_0" 0.25;
  N.Builder.add_current_source b ~name:"I1" "n1_100_0" "0" 3e-3;
  N.Builder.add_voltage_source b ~name:"V1" "n1_0_0" "0" 1.8;
  let net = N.Builder.finish b in
  let text = N.to_string net in
  let net' = P.parse_string text in
  let s = N.stats net and s' = N.stats net' in
  Alcotest.(check int) "nodes" s.N.nodes s'.N.nodes;
  Alcotest.(check int) "resistors" s.N.resistors s'.N.resistors;
  Alcotest.(check int) "isrc" s.N.current_sources s'.N.current_sources;
  Alcotest.(check int) "vsrc" s.N.voltage_sources s'.N.voltage_sources;
  (* And the parsed netlist solves identically. *)
  let v = Mna.solve net and v' = Mna.solve net' in
  check_close ~rtol:1e-9 "same solution"
    (Option.get (Mna.node_voltage v "n1_200_0"))
    (Option.get (Mna.node_voltage v' "n1_200_0"))

(* ---------------------------------------------------------------- *)
(* Parser                                                            *)

let test_parse_values () =
  check_close "plain" 42. (P.parse_value "42");
  check_close "sci" 1.5e-3 (P.parse_value "1.5e-3");
  check_close "kilo" 4700. (P.parse_value "4.7k");
  check_close "milli" 0.001 (P.parse_value "1m");
  check_close "meg" 2.2e6 (P.parse_value "2.2MEG");
  check_close "micro" 3e-6 (P.parse_value "3u");
  check_close "nano" 5e-9 (P.parse_value "5n");
  check_close "pico" 7e-12 (P.parse_value "7p");
  check_close "negative" (-0.5) (P.parse_value "-0.5");
  Alcotest.(check bool) "garbage rejected" true
    (match P.parse_value "abc" with
    | exception Failure _ -> true
    | _ -> false)

let test_parse_values_units_and_exponents () =
  (* Engineering suffix with trailing unit text (SPICE ignores the unit
     letters after the scale). *)
  check_close "kilo + unit" 1200. (P.parse_value "1.2ku");
  check_close "milli + amp" 15.6e-3 (P.parse_value "15.6mA");
  check_close "meg + ohm" 3.3e6 (P.parse_value "3.3megohm");
  check_close "mega spelled out" 2e6 (P.parse_value "2mega");
  check_close "unit only" 5. (P.parse_value "5v");
  check_close "unit only, word" 42. (P.parse_value "42ohm");
  (* Signed / [+]-prefixed exponents and mantissas. *)
  check_close "plus exponent" 1000. (P.parse_value "1e+3");
  check_close "plus mantissa and exponent" 20. (P.parse_value "+2e+1");
  check_close "minus exponent with suffix" 1.5e-6 (P.parse_value "1.5e-3m");
  check_close "uppercase exponent" 1000. (P.parse_value "1E+3");
  (* The 'e' of unit text must not be eaten as an exponent. *)
  check_close "unit starting with e" 5. (P.parse_value "5ev");
  (* Still rejected. *)
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" s) true
        (match P.parse_value s with
        | exception Failure _ -> true
        | _ -> false))
    [ "abc"; "1..2"; "5k3"; "1e+"; "3u+"; "" ]

(* ---------------------------------------------------------------- *)
(* Recovery-mode parsing                                             *)

let corrupted_deck =
  "* deck with damage\n\
   R1 n1_0_0 n1_100_0 0.5\n\
   R2 n1_100_0 0 notanumber\n\
   Q9 a b 5\n\
   I1 n1_100_0 0 2m\n\
   R3 n1_100_0 n1_200_0\n\
   V1 n1_0_0 0 1.8\n\
   .end\n"

let test_parse_tolerant_collects_errors () =
  let net, errs = P.parse_string_tolerant corrupted_deck in
  (* The good lines all made it into the netlist... *)
  let s = N.stats net in
  Alcotest.(check int) "resistors" 1 s.N.resistors;
  Alcotest.(check int) "isrc" 1 s.N.current_sources;
  Alcotest.(check int) "vsrc" 1 s.N.voltage_sources;
  (* ...and the bad ones are each one located diagnostic, file order. *)
  Alcotest.(check (list int)) "error lines" [ 3; 4; 6 ]
    (List.map (fun (e : P.line_error) -> e.P.line) errs);
  List.iter2
    (fun (e : P.line_error) fragment ->
      let contains hay needle =
        let n = String.length needle in
        let found = ref false in
        for i = 0 to String.length hay - n do
          if String.sub hay i n = needle then found := true
        done;
        !found
      in
      Alcotest.(check bool)
        (Printf.sprintf "line %d message" e.P.line)
        true
        (contains e.P.message fragment))
    errs
    [ "notanumber"; "unsupported element"; "4 fields" ];
  (* A clean deck reports no errors and parses identically to strict. *)
  let clean = "R1 a b 1k\nV1 a 0 1.8\n" in
  let net_t, errs_t = P.parse_string_tolerant clean in
  Alcotest.(check int) "clean: no errors" 0 (List.length errs_t);
  Alcotest.(check int) "clean: same stats" (N.stats (P.parse_string clean)).N.nodes
    (N.stats net_t).N.nodes

let test_parse_tolerant_budget () =
  (* Exceeding the budget aborts: a wholly-wrong file must fail fast. *)
  let junk = String.concat "\n" (List.init 10 (fun i -> Printf.sprintf "X%d" i)) in
  (match P.parse_string_tolerant ~max_errors:3 junk with
  | exception P.Parse_error { line = 4; _ } -> ()
  | exception P.Parse_error { line; _ } ->
    Alcotest.failf "budget tripped on line %d, expected 4" line
  | _ -> Alcotest.fail "budget must abort the parse");
  (* Exactly at the budget is still tolerated. *)
  let _, errs = P.parse_string_tolerant ~max_errors:10 junk in
  Alcotest.(check int) "all recorded" 10 (List.length errs);
  check_raises_invalid "negative budget" (fun () ->
      ignore (P.parse_string_tolerant ~max_errors:(-1) junk))

let test_parse_tolerant_file () =
  let path = Filename.temp_file "blech" ".sp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc corrupted_deck;
      close_out oc;
      let net, errs = P.parse_file_tolerant path in
      Alcotest.(check int) "resistors" 1 (N.stats net).N.resistors;
      Alcotest.(check int) "errors" 3 (List.length errs))

let test_parse_basic_netlist () =
  let text =
    "* ibm-style deck\n\
     R1 n1_0_0 n1_100_0 0.5\n\
     r2 n1_100_0 0 1k\n\
     I1 n1_100_0 0 2m\n\
     V1 n1_0_0 0 1.8\n\
     .op\n\
     .end\n"
  in
  let net = P.parse_string text in
  let s = N.stats net in
  Alcotest.(check int) "resistors" 2 s.N.resistors;
  Alcotest.(check int) "isrc" 1 s.N.current_sources;
  Alcotest.(check int) "vsrc" 1 s.N.voltage_sources

let test_parse_errors () =
  (match P.parse_string "R1 a b\n" with
  | exception P.Parse_error { line = 1; _ } -> ()
  | _ -> Alcotest.fail "missing field must fail");
  (match P.parse_string "* ok\nQ1 a b 5\n" with
  | exception P.Parse_error { line = 2; _ } -> ()
  | _ -> Alcotest.fail "unknown element must fail");
  match P.parse_string "R1 a b notanumber\n" with
  | exception P.Parse_error _ -> ()
  | _ -> Alcotest.fail "bad value must fail"

let test_parse_comments_and_whitespace () =
  let net =
    P.parse_string "\n*comment\n   \nR1 a\tb   5 $ trailing comment\n.end\n"
  in
  Alcotest.(check int) "one resistor" 1 (N.stats net).N.resistors

let test_parse_file_roundtrip () =
  let path = Filename.temp_file "blech" ".sp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let b = N.Builder.create () in
      N.Builder.add_resistor b "x" "y" 3.;
      N.Builder.add_voltage_source b "x" "0" 1.;
      let net = N.Builder.finish b in
      let oc = open_out path in
      N.output oc net;
      close_out oc;
      let net' = P.parse_file path in
      Alcotest.(check int) "resistors" 1 (N.stats net').N.resistors)

(* ---------------------------------------------------------------- *)
(* IBM format                                                        *)

let test_ibm_codec () =
  let c = { Ibm.layer = 3; x = 1500; y = 280000 } in
  Alcotest.(check string) "encode" "n3_1500_280000" (Ibm.encode c);
  (match Ibm.decode "n3_1500_280000" with
  | Some c' ->
    Alcotest.(check int) "layer" 3 c'.Ibm.layer;
    Alcotest.(check int) "x" 1500 c'.Ibm.x;
    Alcotest.(check int) "y" 280000 c'.Ibm.y
  | None -> Alcotest.fail "decode failed");
  Alcotest.(check bool) "ground" true (Ibm.is_ground "0");
  Alcotest.(check bool) "ground not decoded" true (Ibm.decode "0" = None);
  Alcotest.(check bool) "pad name not decoded" true (Ibm.decode "X17" = None);
  Alcotest.(check bool) "same layer" true (Ibm.same_layer "n2_0_0" "n2_9_9");
  Alcotest.(check bool) "diff layer" false (Ibm.same_layer "n2_0_0" "n3_0_0");
  Alcotest.(check int) "manhattan" 15
    (Ibm.manhattan_distance
       { Ibm.layer = 1; x = 0; y = 5 }
       { Ibm.layer = 1; x = 10; y = 0 })

(* ---------------------------------------------------------------- *)
(* MNA                                                               *)

let divider () =
  (* 1.8V -- R1=1 -- mid -- R2=2 -- gnd: v(mid) = 1.2. *)
  let b = N.Builder.create () in
  N.Builder.add_voltage_source b "top" "0" 1.8;
  N.Builder.add_resistor b ~name:"R1" "top" "mid" 1.;
  N.Builder.add_resistor b ~name:"R2" "mid" "0" 2.;
  N.Builder.finish b

let test_mna_divider () =
  let sol = Mna.solve (divider ()) in
  check_close ~rtol:1e-9 "divider" 1.2 (Option.get (Mna.node_voltage sol "mid"));
  (* Branch current: (1.8 - 1.2)/1 = 0.6 A through R1 (element 1). *)
  check_close ~rtol:1e-9 "branch current" 0.6 (Mna.resistor_current sol 1);
  check_raises_invalid "not a resistor" (fun () ->
      ignore (Mna.resistor_current sol 0))

let test_mna_current_source () =
  (* Current source pulls 1A out of node a through R=2 to the 5V pad:
     v(a) = 5 - 2*1 = 3. *)
  let b = N.Builder.create () in
  N.Builder.add_voltage_source b "p" "0" 5.;
  N.Builder.add_resistor b "p" "a" 2.;
  N.Builder.add_current_source b "a" "0" 1.;
  let sol = Mna.solve (N.Builder.finish b) in
  check_close ~rtol:1e-9 "loaded node" 3. (Option.get (Mna.node_voltage sol "a"))

let test_mna_zero_ohm_short () =
  (* A 0-ohm resistor merges nodes: both sides read the same voltage. *)
  let b = N.Builder.create () in
  N.Builder.add_voltage_source b "p" "0" 1.;
  N.Builder.add_resistor b "p" "a" 1.;
  N.Builder.add_resistor b "a" "b" 0.;
  N.Builder.add_resistor b "b" "0" 1.;
  let sol = Mna.solve (N.Builder.finish b) in
  check_close ~rtol:1e-9 "a" 0.5 (Option.get (Mna.node_voltage sol "a"));
  check_close ~rtol:1e-9 "b" 0.5 (Option.get (Mna.node_voltage sol "b"));
  (* Short current is unobservable and reported as 0. *)
  check_close "short current" 0. (Mna.resistor_current sol 2)

let test_mna_wheatstone () =
  (* Balanced Wheatstone bridge: no current through the bridge resistor. *)
  let b = N.Builder.create () in
  N.Builder.add_voltage_source b "s" "0" 10.;
  N.Builder.add_resistor b ~name:"Ra" "s" "l" 100.;
  N.Builder.add_resistor b ~name:"Rb" "l" "0" 200.;
  N.Builder.add_resistor b ~name:"Rc" "s" "r" 50.;
  N.Builder.add_resistor b ~name:"Rd" "r" "0" 100.;
  N.Builder.add_resistor b ~name:"Rbridge" "l" "r" 10.;
  let sol = Mna.solve ~tol:1e-13 (N.Builder.finish b) in
  check_close ~atol:1e-7 "balanced bridge" 0. (Mna.resistor_current sol 5);
  check_close ~rtol:1e-7 "left mid" (10. *. 200. /. 300.)
    (Option.get (Mna.node_voltage sol "l"))

let test_mna_floating_vsource_rejected () =
  let b = N.Builder.create () in
  N.Builder.add_voltage_source b "p" "0" 1.;
  N.Builder.add_resistor b "p" "q" 1.;
  N.Builder.add_resistor b "q" "0" 1.;
  (* x-y island pinned only by a source between two floating nodes. *)
  N.Builder.add_voltage_source b "x" "y" 2.;
  N.Builder.add_resistor b "x" "y" 5.;
  match Mna.solve (N.Builder.finish b) with
  | exception Mna.Unsupported _ -> ()
  | _ -> Alcotest.fail "floating source must be rejected"

let test_mna_stacked_sources () =
  (* V1 pins a to 1V; V2 pins b 0.5V above a -> 1.5V. *)
  let b = N.Builder.create () in
  N.Builder.add_voltage_source b "a" "0" 1.;
  N.Builder.add_voltage_source b "b" "a" 0.5;
  N.Builder.add_resistor b "b" "0" 10.;
  let sol = Mna.solve (N.Builder.finish b) in
  check_close ~rtol:1e-12 "stacked" 1.5 (Option.get (Mna.node_voltage sol "b"))

let test_mna_conflicting_sources () =
  let b = N.Builder.create () in
  N.Builder.add_voltage_source b "a" "0" 1.;
  N.Builder.add_voltage_source b "a" "0" 2.;
  match Mna.solve (N.Builder.finish b) with
  | exception Mna.Unsupported _ -> ()
  | _ -> Alcotest.fail "conflicting sources must be rejected"

let test_mna_isolated_node () =
  (* A node mentioned only via... nothing conducting: parser-level
     netlists can contain such nodes; they read 0V. *)
  let b = N.Builder.create () in
  N.Builder.add_voltage_source b "p" "0" 1.;
  N.Builder.add_resistor b "p" "q" 1.;
  N.Builder.add_resistor b "q" "0" 1.;
  ignore (N.Builder.node b "orphan");
  let sol = Mna.solve (N.Builder.finish b) in
  check_close "orphan at 0" 0. (Option.get (Mna.node_voltage sol "orphan"))

let test_mna_no_reference () =
  let b = N.Builder.create () in
  N.Builder.add_resistor b "a" "b" 1.;
  match Mna.solve (N.Builder.finish b) with
  | exception Mna.Unsupported _ -> ()
  | _ -> Alcotest.fail "no reference must be rejected"

let test_mna_grid_kcl () =
  (* On a small resistive ladder with a known total load, the current
     delivered from the pad equals the total load current. *)
  let b = N.Builder.create () in
  N.Builder.add_voltage_source b "pad" "0" 1.8;
  let prev = ref "pad" in
  for i = 1 to 10 do
    let name = Printf.sprintf "n1_%d_0" (i * 100) in
    N.Builder.add_resistor b !prev name 0.1;
    N.Builder.add_current_source b name "0" 0.01;
    prev := name
  done;
  let sol = Mna.solve ~tol:1e-13 (N.Builder.finish b) in
  (* Element 1 is the first ladder resistor: carries all 0.1 A. *)
  check_close ~rtol:1e-9 "total current" 0.1 (Mna.resistor_current sol 1)


(* ---------------------------------------------------------------- *)
(* Checker                                                           *)

module Ck = Spice.Checker

let codes findings = List.map (fun f -> f.Ck.code) findings

let test_checker_clean () =
  let findings = Ck.check (divider ()) in
  Alcotest.(check (list string)) "clean netlist" [] (codes findings)

let test_checker_duplicate () =
  let b = N.Builder.create () in
  N.Builder.add_voltage_source b ~name:"V1" "p" "0" 1.;
  N.Builder.add_resistor b ~name:"R1" "p" "a" 1.;
  N.Builder.add_resistor b ~name:"R1" "a" "0" 1.;
  let findings = Ck.check (N.Builder.finish b) in
  Alcotest.(check bool) "duplicate flagged" true
    (List.mem "duplicate-element" (codes findings))

let test_checker_isolated_and_zero_load () =
  let b = N.Builder.create () in
  N.Builder.add_voltage_source b "p" "0" 1.;
  N.Builder.add_resistor b "p" "0" 1.;
  N.Builder.add_current_source b "dangling" "0" 0.;
  let findings = Ck.check (N.Builder.finish b) in
  let cs = codes findings in
  Alcotest.(check bool) "isolated node" true (List.mem "isolated-node" cs);
  Alcotest.(check bool) "zero load" true (List.mem "zero-current-load" cs)

let test_checker_errors () =
  let b = N.Builder.create () in
  N.Builder.add_current_source b "a" "0" 1e-3;
  let findings = Ck.check (N.Builder.finish b) in
  let errs = codes (Ck.errors findings) in
  Alcotest.(check bool) "no resistors" true (List.mem "no-resistors" errs);
  Alcotest.(check bool) "no supply" true (List.mem "no-supply" errs)

let test_checker_shorts () =
  let b = N.Builder.create () in
  N.Builder.add_voltage_source b "p" "0" 1.;
  N.Builder.add_resistor b "p" "a" 0.;
  N.Builder.add_resistor b "a" "0" 1.;
  let findings = Ck.check (N.Builder.finish b) in
  Alcotest.(check bool) "short summarized" true
    (List.mem "short" (codes findings))


(* Random netlist print/parse fixpoint. *)
let random_netlist seed =
  let rng = Numerics.Rng.create (Int64.of_int (seed + 31)) in
  let b = N.Builder.create ~title:"random" () in
  let n_nodes = 3 + Numerics.Rng.int rng 10 in
  let node i =
    if i = 0 then "0"
    else if i mod 2 = 0 then Printf.sprintf "n%d_%d_%d" (1 + (i mod 3)) (i * 100) (i * 7)
    else Printf.sprintf "X%d" i
  in
  N.Builder.add_voltage_source b (node 1) "0" 1.8;
  for _ = 1 to 5 + Numerics.Rng.int rng 20 do
    let a = Numerics.Rng.int rng n_nodes in
    let c = (a + 1 + Numerics.Rng.int rng (n_nodes - 1)) mod n_nodes in
    match Numerics.Rng.int rng 3 with
    | 0 | 1 ->
      N.Builder.add_resistor b (node a) (node c)
        (Numerics.Rng.uniform rng 1e-3 1e3)
    | _ ->
      N.Builder.add_current_source b (node a) (node c)
        (Numerics.Rng.uniform rng (-1e-2) 1e-2)
  done;
  N.Builder.finish b

let prop_print_parse_fixpoint seed =
  let net = random_netlist seed in
  let text = N.to_string net in
  let reparsed = P.parse_string ~title:"random" text in
  String.equal text (N.to_string reparsed)


let test_mna_cholesky_matches_cg () =
  (* Both solvers on the same grid netlist give the same voltages. *)
  let b = N.Builder.create () in
  let rng = Numerics.Rng.create 83L in
  N.Builder.add_voltage_source b "pad" "0" 1.8;
  let name k = if k = 0 then "pad" else Printf.sprintf "m%d" k in
  for i = 1 to 60 do
    (* Random attachment keeps the network connected to the pad. *)
    N.Builder.add_resistor b (name (Numerics.Rng.int rng i)) (name i)
      (0.05 +. Numerics.Rng.float rng 0.5);
    if i mod 3 = 0 then
      N.Builder.add_current_source b (name i) "0"
        (Numerics.Rng.float rng 1e-3)
  done;
  (* A couple of mesh chords. *)
  N.Builder.add_resistor b (name 5) (name 40) 0.3;
  N.Builder.add_resistor b (name 12) (name 55) 0.2;
  let net = N.Builder.finish b in
  let iterative = Mna.solve ~tol:1e-13 ~solver:Mna.Cg net in
  let direct = Mna.solve ~solver:Mna.Cholesky net in
  Alcotest.(check bool) "direct residual tiny" true
    (direct.Mna.residual < 1e-10);
  Alcotest.(check int) "direct reports 0 iterations" 0
    direct.Mna.cg_iterations;
  check_array_close ~rtol:1e-8 ~atol:1e-11 "voltages agree"
    iterative.Mna.voltages direct.Mna.voltages


(* ---------------------------------------------------------------- *)
(* Solution files                                                    *)

module Sf = Spice.Solution_file

let test_solution_roundtrip () =
  let sol = Mna.solve (divider ()) in
  let s = Sf.of_solution sol in
  Alcotest.(check int) "nodes minus ground" 2 (List.length s);
  let text = Sf.to_string s in
  let parsed = Sf.parse_string text in
  List.iter2
    (fun (n1, v1) (n2, v2) ->
      Alcotest.(check string) "name" n1 n2;
      check_close ~rtol:1e-12 "voltage" v1 v2)
    s parsed

let test_solution_check () =
  let sol = Mna.solve ~tol:1e-13 (divider ()) in
  let golden = Sf.of_solution sol in
  (match Sf.check ~reference:golden sol with
  | Ok () -> ()
  | Error m -> Alcotest.failf "self-check failed: %s" m);
  (* A perturbed reference is rejected. *)
  let wrong = List.map (fun (n, v) -> (n, v +. 1e-3)) golden in
  (match Sf.check ~reference:wrong sol with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "must reject wrong reference");
  (* A reference naming unknown nodes is rejected. *)
  let extra = ("nope", 0.) :: golden in
  match Sf.check ~reference:extra sol with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "must reject missing nodes"

let test_solution_compare () =
  let a = [ ("x", 1.); ("y", 2.) ] in
  let b = [ ("x", 1.); ("y", 2.25); ("z", 3.) ] in
  let c = Sf.compare_solutions ~reference:a b in
  Alcotest.(check int) "common" 2 c.Sf.common;
  check_close "max err" 0.25 c.Sf.max_abs_error;
  Alcotest.(check (option string)) "worst" (Some "y") c.Sf.worst_node;
  let c2 = Sf.compare_solutions ~reference:b a in
  Alcotest.(check (list string)) "missing" [ "z" ] c2.Sf.missing

let test_solution_parse_errors () =
  (match Sf.parse_string "a 1.0\nbroken\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "must fail on bad line");
  match Sf.parse_string "a notafloat\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "must fail on bad float"

let suites =
  [
    ( "spice.netlist",
      [
        case "node interning" test_builder_interning;
        case "element construction" test_builder_elements;
        case "print/parse roundtrip" test_netlist_roundtrip;
      ] );
    ( "spice.parser",
      [
        case "numeric literals" test_parse_values;
        case "unit suffixes and signed exponents"
          test_parse_values_units_and_exponents;
        case "basic deck" test_parse_basic_netlist;
        case "parse errors carry line numbers" test_parse_errors;
        case "recovery mode collects line errors"
          test_parse_tolerant_collects_errors;
        case "recovery mode error budget" test_parse_tolerant_budget;
        case "recovery mode on files" test_parse_tolerant_file;
        case "comments and whitespace" test_parse_comments_and_whitespace;
        case "file roundtrip" test_parse_file_roundtrip;
        qcheck ~count:100 "print/parse fixpoint"
          QCheck2.Gen.(int_bound 1_000_000)
          prop_print_parse_fixpoint;
      ] );
    ("spice.ibm_format", [ case "codec" test_ibm_codec ]);
    ( "spice.solution_file",
      [
        case "roundtrip" test_solution_roundtrip;
        case "check against golden" test_solution_check;
        case "comparison" test_solution_compare;
        case "parse errors" test_solution_parse_errors;
      ] );
    ( "spice.checker",
      [
        case "clean netlist" test_checker_clean;
        case "duplicate names" test_checker_duplicate;
        case "isolated node / zero load" test_checker_isolated_and_zero_load;
        case "hard errors" test_checker_errors;
        case "shorts summarized" test_checker_shorts;
      ] );
    ( "spice.mna",
      [
        case "voltage divider" test_mna_divider;
        case "current source" test_mna_current_source;
        case "zero-ohm short" test_mna_zero_ohm_short;
        case "wheatstone bridge" test_mna_wheatstone;
        case "floating V source rejected" test_mna_floating_vsource_rejected;
        case "stacked sources" test_mna_stacked_sources;
        case "conflicting sources rejected" test_mna_conflicting_sources;
        case "isolated node" test_mna_isolated_node;
        case "no reference rejected" test_mna_no_reference;
        case "ladder KCL" test_mna_grid_kcl;
        case "Cholesky solver matches CG" test_mna_cholesky_matches_cg;
      ] );
  ]
